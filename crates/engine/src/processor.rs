//! One unified surface for running a query, whatever executes it.
//!
//! [`Engine`] (single-threaded) and [`ShardedEngine`] (N supervised
//! workers) grew the same vocabulary — process, punctuate, finish, stats —
//! with slightly different spellings and failure modes. [`StreamProcessor`]
//! is the common trait: drivers, benches and tools write against it once
//! and run on either executor. Methods that can genuinely fail on one
//! implementation (a dead unsupervised worker) are fallible for both; the
//! single-threaded engine simply never errs.
//!
//! Both types keep their inherent methods unchanged, so existing call
//! sites compile as before — the trait is purely additive, for generic
//! code like [`RateDriver::try_replay`](crate::driver::RateDriver::try_replay).

use crate::engine::{Engine, EngineStats, Row, StreamEvent};
use crate::shard::ShardedEngine;
use crate::telemetry::MetricsSnapshot;
use crate::tuple::{Micros, Packet};

/// A running query execution that consumes a timestamped stream and
/// produces bucketed rows: the one API over the single-threaded
/// [`Engine`] and the supervised [`ShardedEngine`].
pub trait StreamProcessor {
    /// Offers one tuple.
    ///
    /// # Errors
    /// [`fd_core::Error::WorkerLost`] if the executor has lost a worker it
    /// cannot recover (sharded engine with supervision disabled).
    fn process(&mut self, pkt: &Packet) -> Result<(), fd_core::Error>;

    /// Offers a batch of tuples through the executor's fastest path.
    ///
    /// # Errors
    /// As [`StreamProcessor::process`].
    fn process_packets(&mut self, pkts: &[Packet]) -> Result<(), fd_core::Error> {
        for p in pkts {
            self.process(p)?;
        }
        Ok(())
    }

    /// Advances the watermark without data, closing due buckets.
    ///
    /// # Errors
    /// As [`StreamProcessor::process`].
    fn punctuate(&mut self, wm: Micros) -> Result<(), fd_core::Error>;

    /// Offers one stream element (data or punctuation).
    ///
    /// # Errors
    /// As [`StreamProcessor::process`].
    fn process_event(&mut self, ev: &StreamEvent) -> Result<(), fd_core::Error> {
        match ev {
            StreamEvent::Data(pkt) => self.process(pkt),
            StreamEvent::Punctuation(ts) => self.punctuate(*ts),
        }
    }

    /// Ends the stream: closes all open buckets and returns every pending
    /// row. Idempotent where the executor supports it.
    fn finish(&mut self) -> Vec<Row>;

    /// Graceful drain: flushes everything in flight, waits up to `deadline`
    /// for queues to empty, then finishes — reporting what the shutdown
    /// cost (sheds, wedge respawns, epochs abandoned at the deadline). The
    /// single-threaded engine has nothing in flight, so the default simply
    /// finishes with a clean report.
    fn drain(&mut self, deadline: std::time::Duration) -> (Vec<Row>, crate::overload::DrainReport) {
        let _ = deadline;
        (self.finish(), crate::overload::DrainReport::clean())
    }

    /// Execution counters so far (shard-side counters of a sharded run
    /// are complete only after [`finish`](StreamProcessor::finish)).
    fn stats(&self) -> EngineStats;

    /// A point-in-time telemetry sample in the unified snapshot shape.
    /// The single-threaded engine synthesizes one from its counters; the
    /// sharded engine samples its live registry.
    fn telemetry_snapshot(&self) -> MetricsSnapshot;
}

/// Deterministic replay entry point for differential testing: feeds every
/// event to `p` in slice order, advances the watermark to `final_wm`,
/// finishes the run, and returns the rows in a canonical order —
/// `(bucket_start, key)` ascending — so two executors' outputs can be
/// compared element-wise regardless of shard interleaving.
///
/// # Errors
/// Propagates the first executor error ([`StreamProcessor::process`]).
pub fn replay<P: StreamProcessor>(
    p: &mut P,
    events: &[StreamEvent],
    final_wm: Micros,
) -> Result<Vec<Row>, fd_core::Error> {
    for ev in events {
        p.process_event(ev)?;
    }
    p.punctuate(final_wm)?;
    let mut rows = p.finish();
    rows.sort_by(|a, b| (a.bucket_start, &a.key).cmp(&(b.bucket_start, &b.key)));
    Ok(rows)
}

impl StreamProcessor for Engine {
    fn process(&mut self, pkt: &Packet) -> Result<(), fd_core::Error> {
        Engine::process(self, pkt);
        Ok(())
    }

    fn punctuate(&mut self, wm: Micros) -> Result<(), fd_core::Error> {
        Engine::punctuate(self, wm);
        Ok(())
    }

    fn finish(&mut self) -> Vec<Row> {
        Engine::finish(self)
    }

    fn stats(&self) -> EngineStats {
        Engine::stats(self)
    }

    fn telemetry_snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot::from_engine_stats(&Engine::stats(self), self.watermark())
    }
}

impl StreamProcessor for ShardedEngine {
    fn process(&mut self, pkt: &Packet) -> Result<(), fd_core::Error> {
        self.try_process(pkt)
    }

    fn process_packets(&mut self, pkts: &[Packet]) -> Result<(), fd_core::Error> {
        self.try_process_packets(pkts)
    }

    fn punctuate(&mut self, wm: Micros) -> Result<(), fd_core::Error> {
        self.try_punctuate(wm)
    }

    fn finish(&mut self) -> Vec<Row> {
        ShardedEngine::finish(self)
    }

    fn drain(&mut self, deadline: std::time::Duration) -> (Vec<Row>, crate::overload::DrainReport) {
        ShardedEngine::drain(self, deadline)
    }

    fn stats(&self) -> EngineStats {
        ShardedEngine::stats(self)
    }

    fn telemetry_snapshot(&self) -> MetricsSnapshot {
        self.telemetry().snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregators::count_factory;
    use crate::tuple::{Proto, MICROS_PER_SEC};
    use crate::udaf::Query;

    fn pkt(ts_s: f64, dst_ip: u32) -> Packet {
        Packet {
            ts: (ts_s * MICROS_PER_SEC as f64) as Micros,
            src_ip: 1,
            dst_ip,
            src_port: 1000,
            dst_port: 80,
            len: 100,
            proto: Proto::Tcp,
        }
    }

    fn query() -> Query {
        Query::builder("count")
            .group_by(|p| p.dst_host())
            .bucket_secs(60)
            .aggregate(count_factory())
            .build()
    }

    /// Generic driver code: compiles once, runs on both executors.
    fn drive<P: StreamProcessor>(p: &mut P) -> Vec<Row> {
        for i in 0..5_000u64 {
            StreamProcessor::process(p, &pkt(0.05 * i as f64, (i % 17) as u32)).expect("process");
        }
        StreamProcessor::punctuate(p, 500 * MICROS_PER_SEC).expect("punctuate");
        StreamProcessor::finish(p)
    }

    #[test]
    fn both_executors_agree_through_the_trait() {
        let mut single = Engine::new(query());
        let mut parallel = ShardedEngine::try_new(query(), 3).expect("spawn");
        let a = drive(&mut single);
        let b = drive(&mut parallel);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!((x.bucket_start, x.key), (y.bucket_start, y.key));
            assert_eq!(x.value, y.value);
        }
        assert_eq!(
            StreamProcessor::stats(&single).tuples_in,
            StreamProcessor::stats(&parallel).tuples_in
        );
    }

    #[test]
    fn telemetry_snapshot_has_one_shape() {
        let mut single = Engine::new(query());
        let mut parallel = ShardedEngine::try_new(query(), 2).expect("spawn");
        drive(&mut single);
        drive(&mut parallel);
        let s = single.telemetry_snapshot();
        let p = parallel.telemetry_snapshot();
        assert_eq!(s.tuples_in, p.tuples_in);
        assert_eq!(s.rows_out, p.rows_out);
        assert!(s.shards.is_empty(), "single-threaded: no shard slices");
        assert_eq!(p.shards.len(), 2);
    }
}
