//! The low-level aggregation table (Gigascope's LFTA).
//!
//! GS splits splittable queries into a low-level part running a *fixed-size*
//! hash table close to the packet source, and a high-level part combining
//! the partial aggregates. The low table is direct-mapped: a colliding group
//! evicts the resident entry, which is flushed upward as a partial
//! aggregate. This is what makes undecayed and forward-decayed aggregation
//! so cheap in Figure 2(a): most tuples fold into a slot with one hash and
//! one arithmetic op, and only evictions touch the (slower) high level.

use fd_core::hash::mix64;

use crate::tuple::{Micros, Packet};
use crate::udaf::{Aggregator, AggregatorFactory};

/// A partial aggregate evicted (or flushed) from the low-level table.
pub struct Partial {
    /// Group key.
    pub key: u64,
    /// Time bucket id (bucket start / bucket width).
    pub bucket: u64,
    /// The partial aggregate state.
    pub agg: Box<dyn Aggregator>,
}

struct Slot {
    key: u64,
    bucket: u64,
    agg: Box<dyn Aggregator>,
}

/// The fixed-size direct-mapped partial-aggregation table.
pub struct Lfta {
    slots: Vec<Option<Slot>>,
    evictions: u64,
    updates: u64,
}

impl Lfta {
    /// Creates a table with `n_slots` slots.
    ///
    /// # Panics
    /// Panics if `n_slots == 0`.
    pub fn new(n_slots: usize) -> Self {
        assert!(n_slots > 0);
        let mut slots = Vec::with_capacity(n_slots);
        slots.resize_with(n_slots, || None);
        Self {
            slots,
            evictions: 0,
            updates: 0,
        }
    }

    /// Folds a tuple into its group's slot. If the slot is held by a
    /// different (group, bucket), that resident is evicted and returned so
    /// the engine can forward it to the high level.
    pub fn update(
        &mut self,
        key: u64,
        bucket: u64,
        pkt: &Packet,
        factory: &dyn AggregatorFactory,
        bucket_start: Micros,
    ) -> Option<Partial> {
        self.updates += 1;
        let idx = (mix64(key ^ bucket.rotate_left(32)) as usize) % self.slots.len();
        let slot = &mut self.slots[idx];
        match slot {
            Some(s) if s.key == key && s.bucket == bucket => {
                s.agg.update(pkt);
                None
            }
            _ => {
                let mut agg = factory.make(bucket_start);
                agg.update(pkt);
                let evicted = slot.take().map(|s| {
                    self.evictions += 1;
                    Partial {
                        key: s.key,
                        bucket: s.bucket,
                        agg: s.agg,
                    }
                });
                *slot = Some(Slot { key, bucket, agg });
                evicted
            }
        }
    }

    /// Flushes every resident entry of the given bucket (used on bucket
    /// close).
    pub fn flush_bucket(&mut self, bucket: u64) -> Vec<Partial> {
        self.flush_if(|b| b == bucket)
    }

    /// Flushes every resident entry of a bucket before `target` (batch
    /// bucket close).
    pub fn flush_below(&mut self, target: u64) -> Vec<Partial> {
        self.flush_if(|b| b < target)
    }

    fn flush_if(&mut self, pred: impl Fn(u64) -> bool) -> Vec<Partial> {
        let mut out = Vec::new();
        for slot in &mut self.slots {
            if matches!(slot, Some(s) if pred(s.bucket)) {
                let s = slot.take().expect("checked above");
                out.push(Partial {
                    key: s.key,
                    bucket: s.bucket,
                    agg: s.agg,
                });
            }
        }
        out
    }

    /// Flushes everything (end of stream).
    pub fn flush_all(&mut self) -> Vec<Partial> {
        let mut out = Vec::new();
        for slot in &mut self.slots {
            if let Some(s) = slot.take() {
                out.push(Partial {
                    key: s.key,
                    bucket: s.bucket,
                    agg: s.agg,
                });
            }
        }
        out
    }

    /// Number of collision evictions so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Number of tuple updates so far.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Number of occupied slots.
    pub fn occupancy(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Approximate memory footprint of the resident partial aggregates.
    pub fn size_bytes(&self) -> usize {
        self.slots
            .iter()
            .flatten()
            .map(|s| s.agg.size_bytes() + std::mem::size_of::<Slot>())
            .sum::<usize>()
            + self.slots.capacity() * std::mem::size_of::<Option<Slot>>()
    }

    /// Total slot count (resident or not) — recorded in checkpoints so
    /// restore can rebuild the exact same table geometry.
    pub(crate) fn n_slots(&self) -> usize {
        self.slots.len()
    }

    /// Serializes the table into an engine-checkpoint blob: a resident
    /// count, then every resident slot *in place* (index, key, bucket,
    /// length-prefixed aggregator state). Slots are deliberately **not**
    /// flushed first — restoring them into the same positions preserves
    /// the exact future fold/evict/flush order, which is what makes
    /// recovery byte-identical. The activity counters and slot count
    /// travel in the checkpoint header, not here.
    ///
    /// Returns `None` if any resident aggregator declines
    /// [`Aggregator::checkpoint`].
    pub(crate) fn snapshot_into(&self, out: &mut Vec<u8>) -> Option<()> {
        use fd_core::checkpoint::put_u64;
        // Count residents while writing them (patching the count in after)
        // rather than paying a second full-table scan up front.
        let count_pos = out.len();
        put_u64(out, 0);
        let mut resident = 0u64;
        for (idx, slot) in self.slots.iter().enumerate() {
            if let Some(s) = slot {
                resident += 1;
                put_u64(out, idx as u64);
                put_u64(out, s.key);
                put_u64(out, s.bucket);
                crate::udaf::write_agg(out, s.agg.as_ref())?;
            }
        }
        out[count_pos..count_pos + 8].copy_from_slice(&resident.to_le_bytes());
        Some(())
    }

    /// Rebuilds a table from a [`snapshot_into`](Self::snapshot_into)
    /// section: fresh aggregators from `factory`, refilled via
    /// [`Aggregator::restore`] into the recorded slot positions. The
    /// counters come from the checkpoint header.
    pub(crate) fn restore_from(
        r: &mut fd_core::checkpoint::Reader<'_>,
        n_slots: u64,
        evictions: u64,
        updates: u64,
        factory: &dyn AggregatorFactory,
        bucket_micros: Micros,
    ) -> Result<Self, fd_core::checkpoint::CodecError> {
        use fd_core::checkpoint::CodecError;
        if n_slots == 0 {
            return Err(CodecError::new("LFTA snapshot with zero slots"));
        }
        let mut lfta = Lfta::new(n_slots as usize);
        lfta.evictions = evictions;
        lfta.updates = updates;
        let resident = r.u64()?;
        for _ in 0..resident {
            let idx = r.u64()? as usize;
            let key = r.u64()?;
            let bucket = r.u64()?;
            let len = r.u64()? as usize;
            let bytes = r.bytes(len)?;
            if idx >= lfta.slots.len() {
                return Err(CodecError::new(format!("LFTA slot {idx} out of range")));
            }
            let mut agg = factory.make(bucket * bucket_micros);
            agg.restore(bytes)?;
            lfta.slots[idx] = Some(Slot { key, bucket, agg });
        }
        Ok(lfta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Proto;
    use crate::udaf::{AggValue, FnFactory};
    use std::any::Any;

    struct CountAgg(u64);
    impl Aggregator for CountAgg {
        fn update(&mut self, _: &Packet) {
            self.0 += 1;
        }
        fn merge_boxed(&mut self, other: Box<dyn Aggregator>) {
            self.0 += other.as_any_box().downcast::<CountAgg>().expect("type").0;
        }
        fn emit(&self, _t: f64) -> AggValue {
            AggValue::Float(self.0 as f64)
        }
        fn size_bytes(&self) -> usize {
            8
        }
        fn as_any_box(self: Box<Self>) -> Box<dyn Any> {
            self
        }
    }

    fn pkt(ts: Micros) -> Packet {
        Packet {
            ts,
            src_ip: 0,
            dst_ip: 0,
            src_port: 0,
            dst_port: 0,
            len: 1,
            proto: Proto::Tcp,
        }
    }

    fn factory() -> std::sync::Arc<FnFactory> {
        FnFactory::new("count", true, |_| Box::new(CountAgg(0)))
    }

    #[test]
    fn same_group_folds_in_place() {
        let mut lfta = Lfta::new(64);
        let f = factory();
        for _ in 0..10 {
            assert!(lfta.update(7, 0, &pkt(1), f.as_ref(), 0).is_none());
        }
        assert_eq!(lfta.evictions(), 0);
        assert_eq!(lfta.occupancy(), 1);
        let flushed = lfta.flush_all();
        assert_eq!(flushed.len(), 1);
        assert_eq!(flushed[0].agg.emit(0.0), AggValue::Float(10.0));
    }

    #[test]
    fn collisions_evict_partials() {
        // A 1-slot table forces every key change to evict.
        let mut lfta = Lfta::new(1);
        let f = factory();
        assert!(lfta.update(1, 0, &pkt(1), f.as_ref(), 0).is_none());
        let evicted = lfta.update(2, 0, &pkt(2), f.as_ref(), 0).expect("eviction");
        assert_eq!(evicted.key, 1);
        assert_eq!(lfta.evictions(), 1);
    }

    #[test]
    fn bucket_change_evicts_same_key_on_collision() {
        // The slot hash covers (key, bucket); with one slot the new bucket
        // must evict the old bucket's partial rather than fold into it.
        let mut lfta = Lfta::new(1);
        let f = factory();
        assert!(lfta.update(7, 0, &pkt(1), f.as_ref(), 0).is_none());
        let evicted = lfta
            .update(7, 1, &pkt(2), f.as_ref(), 60)
            .expect("eviction");
        assert_eq!((evicted.key, evicted.bucket), (7, 0));
        assert_eq!(evicted.agg.emit(0.0), AggValue::Float(1.0));
    }

    #[test]
    fn flush_bucket_is_selective() {
        let mut lfta = Lfta::new(1024);
        let f = factory();
        for key in 0..20u64 {
            lfta.update(key, key % 2, &pkt(1), f.as_ref(), 0);
        }
        let b0 = lfta.flush_bucket(0);
        assert!(b0.iter().all(|p| p.bucket == 0));
        let remaining = lfta.flush_all();
        assert!(remaining.iter().all(|p| p.bucket == 1));
        assert_eq!(b0.len() + remaining.len(), 20);
    }

    #[test]
    fn partials_sum_to_total_under_heavy_collisions() {
        // Whatever the eviction pattern, no tuple may be lost.
        let mut lfta = Lfta::new(8);
        let f = factory();
        let mut total = 0.0;
        let mut partials: Vec<Partial> = Vec::new();
        for i in 0..10_000u64 {
            if let Some(p) = lfta.update(i % 100, 0, &pkt(1), f.as_ref(), 0) {
                partials.push(p);
            }
        }
        partials.extend(lfta.flush_all());
        for p in &partials {
            total += p.agg.emit(0.0).as_float().expect("float");
        }
        assert_eq!(total, 10_000.0);
        assert!(
            lfta.evictions() > 0,
            "expected collisions with 8 slots / 100 keys"
        );
    }
}
