//! Crash-durable persistence beneath the supervised sharded engine.
//!
//! PR 4's supervision makes the engine survive *worker* crashes: each
//! worker periodically serializes its whole engine into an in-memory
//! [`CheckpointSlot`] (exact, because forward decay's frozen numerators
//! never need rescaling — Section VI-B), and the dispatcher replays the
//! short backlog tail. A *process* crash still loses everything. This
//! module pushes the same two artifacts to disk:
//!
//! * a **per-shard segmented WAL** of every message the dispatcher sends
//!   (batches and punctuations, CRC32-framed via
//!   [`fd_core::checkpoint::put_frame`]), plus a control log of **commit
//!   records** snapshotting the dispatcher's admission state and each
//!   shard's high sequence number at a caller-chosen stream `position`;
//! * **atomic on-disk checkpoints** of the worker slots (tmp + fsync +
//!   read-back verify + rename), tracked by a versioned `MANIFEST` that
//!   records, per shard, which checkpoint file is current and the WAL
//!   sequence it covers. WAL segments wholly below the manifest coverage
//!   are garbage-collected after each manifest commit.
//!
//! ## Off the hot path
//!
//! The dispatcher never serializes, checksums, or touches a file: it
//! enqueues a `WalCmd` — an `Arc` clone of the batch it was already
//! sending — onto a bounded SPSC ring consumed by one **writer thread**,
//! which does everything else. Durability's dispatch-path cost is one
//! branch and one ring push per *batch* (~1024 tuples), which is how the
//! `durability_overhead` bench keeps the fsync=checkpoint configuration
//! within a few percent of the non-durable dispatch path. A full ring
//! applies backpressure instead of dropping records.
//!
//! ## Recovery model (group commit)
//!
//! `recover` scans the store and picks the **newest commit record `C`**
//! such that, for every shard `s`,
//! `covered[s] ≤ C.hi[s] ≤ last_good_wal_seq[s]` — i.e. the checkpoint on
//! disk does not overshoot `C` and the WAL tail reaches it. Torn tails
//! (CRC or length mismatch, from a crash mid-append or injected short
//! writes) are cleanly truncated and counted, never a panic. Everything
//! beyond `C` is physically truncated, workers are restored from the
//! on-disk checkpoints and replayed through the normal batch path, the
//! dispatcher's admission state is restored from `C`, and the caller
//! re-feeds its input from `C.position` — yielding answers bit-identical
//! to an uncrashed run for deterministic queries. A store damaged *below*
//! its last commit (a corrupt manifest-referenced checkpoint, a WAL gap)
//! is an explicit [`fd_core::Error::Durability`], never a silently wrong
//! answer.
//!
//! ## Degradation ladder
//!
//! Any I/O error on the writer thread (including injected
//! [`DiskFault`](crate::fault::DiskFault)s) flips the engine to
//! **degraded durability**: the `durability_degraded` gauge goes to 1,
//! one warning is logged, and the stream continues under PR 4's
//! in-memory supervision exactly as if `--data-dir` had never been
//! passed. The store on disk is left at its last consistent commit, so a
//! later restart still recovers everything up to that point.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use fd_core::checkpoint::{put_frame, put_u32, put_u64, read_frame, Frame, Reader};

use crate::io::{IoBackend, IoFile};
use crate::spsc::{ring, BatchPool, RingReceiver, RingSender};
use crate::supervisor::CheckpointSlot;
use crate::telemetry::EngineTelemetry;
use crate::tuple::{Micros, Packet, Proto};

/// When the WAL writer calls fsync.
///
/// A `kill -9` (or OOM-kill) loses nothing that was *written* — the page
/// cache survives the process — so fsync frequency only matters for
/// power loss and kernel crashes. See the README's trade-off table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// fsync after every appended record. Maximum durability, slowest.
    EveryBatch,
    /// fsync all dirty files after every N appended records.
    EveryN(u64),
    /// fsync only when a checkpoint/manifest commits (and at clean
    /// shutdown). The default: a power loss rolls back to the last
    /// manifest commit, a process crash loses nothing.
    #[default]
    OnCheckpoint,
}

impl FsyncPolicy {
    /// Parses the CLI spelling: `batch`, `every:N` (N ≥ 1), `checkpoint`.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "batch" => Some(FsyncPolicy::EveryBatch),
            "checkpoint" => Some(FsyncPolicy::OnCheckpoint),
            _ => {
                let n: u64 = s.strip_prefix("every:")?.parse().ok()?;
                if n == 0 {
                    return None;
                }
                Some(FsyncPolicy::EveryN(n))
            }
        }
    }
}

/// Configuration for [`ShardedEngine::try_durable`](crate::shard::ShardedEngine::try_durable).
#[derive(Debug, Clone)]
pub struct DurabilityOptions {
    /// fsync cadence (default [`FsyncPolicy::OnCheckpoint`]).
    pub fsync: FsyncPolicy,
    /// Bytes per WAL segment before rotation (default 8 MiB). Smaller
    /// segments make garbage collection finer-grained.
    pub segment_bytes: u64,
    /// The filesystem to write through (default [`StdFs`](crate::io::StdFs);
    /// tests substitute [`FaultyFs`](crate::io::FaultyFs)).
    pub io: Arc<dyn IoBackend>,
}

impl Default for DurabilityOptions {
    fn default() -> Self {
        Self {
            fsync: FsyncPolicy::OnCheckpoint,
            segment_bytes: 8 * 1024 * 1024,
            io: Arc::new(crate::io::StdFs),
        }
    }
}

/// What a recovered (or freshly created) store told the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Stream position (input events already durable) to re-feed from.
    /// `0` for a fresh store.
    pub position: u64,
    /// The dispatcher watermark restored from the chosen commit, µs.
    pub watermark: Micros,
    /// WAL batch records replayed through workers during recovery.
    pub replayed_batches: u64,
    /// Tuples inside those batches.
    pub replayed_tuples: u64,
    /// Torn/corrupt records (and unreachable segments) truncated.
    pub truncated_records: u64,
    /// `false` when the directory held no prior store.
    pub resumed: bool,
}

// ---------------------------------------------------------------------------
// Wire format
// ---------------------------------------------------------------------------

/// File-type magics ("FDW1" / "FDK1" / "FDM1" little-endian).
const MAGIC_CKPT: u32 = 0x314B_4446;
const MAGIC_MANIFEST: u32 = 0x314D_4446;

const KIND_BATCH: u8 = 1;
const KIND_PUNCT: u8 = 2;
const KIND_COMMIT: u8 = 3;
/// A batch carrying an embedded sender watermark (a fabric epoch). A
/// separate kind rather than a new field on [`KIND_BATCH`]: stores
/// written before the ingress fabric existed have watermark-less batch
/// records, and growing the old layout in place would make every one of
/// them misparse on open — classified as torn, silently truncating the
/// tail of a perfectly good store. The single-dispatcher path (watermark
/// always 0, punctuation via [`KIND_PUNCT`]) still writes [`KIND_BATCH`],
/// so its stores stay byte-identical to pre-fabric versions in both
/// directions.
const KIND_BATCH_WM: u8 = 4;

/// Smallest possible encoded packet — used to bound the claimed packet
/// count of a batch record before allocating for it.
const MIN_PACKET_BYTES: usize = 11;

/// LEB128: 7 value bits per byte, high bit = continuation.
fn put_uvarint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

fn read_uvarint(r: &mut Reader<'_>) -> Option<u64> {
    let mut v = 0u64;
    for shift in (0..64).step_by(7) {
        let b = r.u8().ok()?;
        v |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            // The 10th byte carries only the top bit of a u64.
            if shift == 63 && b > 1 {
                return None;
            }
            return Some(v);
        }
        if shift == 63 {
            return None;
        }
    }
    None
}

fn zigzag(d: i64) -> u64 {
    ((d << 1) ^ (d >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Encodes one packet, delta-compressed against the previous packet's
/// timestamp within the same batch record (`prev_ts`, 0 at batch start).
///
/// At streaming rates consecutive timestamps differ by microseconds, so
/// the zigzag-varint delta is 1-2 bytes where the absolute `ts` costs 8
/// (wrapping arithmetic keeps out-of-order and arbitrary `u64` pairs
/// exact). Fields that are near-uniform in practice — `src_ip`, the
/// ports — stay fixed-width, where a varint would *grow* them. The
/// point is writer-thread economy, not archival compression: WAL bytes
/// are CRC'd, copied, and written per batch, and on small hosts that
/// work time-shares cores with dispatch (see the `durability_overhead`
/// bench), so ~2x fewer bytes is ~2x less interference.
fn put_packet(out: &mut Vec<u8>, p: &Packet, prev_ts: &mut u64) {
    put_uvarint(out, zigzag(p.ts.wrapping_sub(*prev_ts) as i64));
    *prev_ts = p.ts;
    put_u32(out, p.src_ip);
    put_uvarint(out, u64::from(p.dst_ip));
    out.extend_from_slice(&p.src_port.to_le_bytes());
    out.extend_from_slice(&p.dst_port.to_le_bytes());
    let proto = match p.proto {
        Proto::Tcp => 0u64,
        Proto::Udp => 1,
    };
    put_uvarint(out, (u64::from(p.len) << 1) | proto);
}

fn read_packet(r: &mut Reader<'_>, prev_ts: &mut u64) -> Option<Packet> {
    let ts = prev_ts.wrapping_add(unzigzag(read_uvarint(r)?) as u64);
    *prev_ts = ts;
    let src_ip = r.u32().ok()?;
    let dst_ip = u32::try_from(read_uvarint(r)?).ok()?;
    let src_port = u16::from_le_bytes(r.bytes(2).ok()?.try_into().ok()?);
    let dst_port = u16::from_le_bytes(r.bytes(2).ok()?.try_into().ok()?);
    let len_proto = read_uvarint(r)?;
    let len = u32::try_from(len_proto >> 1).ok()?;
    let proto = if len_proto & 1 == 0 {
        Proto::Tcp
    } else {
        Proto::Udp
    };
    Some(Packet {
        ts,
        src_ip,
        dst_ip,
        src_port,
        dst_port,
        len,
        proto,
    })
}

/// The dispatcher state frozen into each control-log commit record: where
/// the input stream stands and everything needed to resume admission
/// bit-identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct CommitState {
    /// Input events (packets) fed so far — the re-feed point.
    pub position: u64,
    /// Dispatcher watermark, µs.
    pub watermark: Micros,
    /// Dispatcher `closed_below` (bucket index).
    pub closed_below: u64,
    /// Round-robin cursor.
    pub rr: u64,
    /// Admission counters.
    pub tuples_in: u64,
    pub filtered: u64,
    pub late_drops: u64,
    /// Highest WAL sequence assigned per shard at commit time.
    pub hi: Vec<u64>,
    /// Per-producer ingress state for multi-producer fabric runs. Empty
    /// for single-dispatcher stores (and for stores written before the
    /// fabric existed — the field is appended after `hi` on the wire and
    /// only decoded when bytes remain, so legacy commits parse fine).
    pub producers: Vec<ProducerCommit>,
}

/// One ingress handle's admission state frozen into a fabric commit:
/// everything `resume_fabric` needs to rebuild the handle bit-identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ProducerCommit {
    /// Handle-local watermark, µs.
    pub watermark: Micros,
    /// Handle-local `closed_below` (bucket index).
    pub closed_below: u64,
    /// Handle-local round-robin shard cursor.
    pub rr: u64,
    /// Epochs sealed so far (the handle's local epoch counter `k`; its
    /// next per-shard seq is `k·P + p + 1`).
    pub epochs: u64,
    /// Handle-local admission counters.
    pub tuples_in: u64,
    pub filtered: u64,
    pub late_drops: u64,
}

impl ProducerCommit {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.watermark);
        put_u64(out, self.closed_below);
        put_u64(out, self.rr);
        put_u64(out, self.epochs);
        put_u64(out, self.tuples_in);
        put_u64(out, self.filtered);
        put_u64(out, self.late_drops);
    }

    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        Some(Self {
            watermark: r.u64().ok()?,
            closed_below: r.u64().ok()?,
            rr: r.u64().ok()?,
            epochs: r.u64().ok()?,
            tuples_in: r.u64().ok()?,
            filtered: r.u64().ok()?,
            late_drops: r.u64().ok()?,
        })
    }
}

impl CommitState {
    fn zero(n_shards: usize) -> Self {
        Self {
            position: 0,
            watermark: 0,
            closed_below: 0,
            rr: 0,
            tuples_in: 0,
            filtered: 0,
            late_drops: 0,
            hi: vec![0; n_shards],
            producers: Vec::new(),
        }
    }

    fn encode(&self, out: &mut Vec<u8>) {
        out.push(KIND_COMMIT);
        put_u64(out, self.position);
        put_u64(out, self.watermark);
        put_u64(out, self.closed_below);
        put_u64(out, self.rr);
        put_u64(out, self.tuples_in);
        put_u64(out, self.filtered);
        put_u64(out, self.late_drops);
        put_u32(out, self.hi.len() as u32);
        for &h in &self.hi {
            put_u64(out, h);
        }
        // Producer blocks ride after `hi` so a legacy (single-dispatcher)
        // commit is byte-identical to the pre-fabric format.
        if !self.producers.is_empty() {
            put_u32(out, self.producers.len() as u32);
            for p in &self.producers {
                p.encode(out);
            }
        }
    }

    fn decode(r: &mut Reader<'_>, n_shards: usize) -> Option<Self> {
        let position = r.u64().ok()?;
        let watermark = r.u64().ok()?;
        let closed_below = r.u64().ok()?;
        let rr = r.u64().ok()?;
        let tuples_in = r.u64().ok()?;
        let filtered = r.u64().ok()?;
        let late_drops = r.u64().ok()?;
        let n = r.u32().ok()? as usize;
        if n != n_shards {
            return None;
        }
        let mut hi = Vec::with_capacity(n);
        for _ in 0..n {
            hi.push(r.u64().ok()?);
        }
        let mut producers = Vec::new();
        if !r.is_empty() {
            let np = r.u32().ok()? as usize;
            if np == 0 || np > r.remaining() / 8 {
                return None;
            }
            producers.reserve(np);
            for _ in 0..np {
                producers.push(ProducerCommit::decode(r)?);
            }
        }
        if !r.is_empty() {
            return None;
        }
        Some(Self {
            position,
            watermark,
            closed_below,
            rr,
            tuples_in,
            filtered,
            late_drops,
            hi,
            producers,
        })
    }
}

/// A WAL record reconstructed during recovery, ready to preload a shard's
/// replay backlog.
#[derive(Debug, Clone)]
pub(crate) enum ReplayMsg {
    /// A batch of admitted packets, carrying the sender's watermark as of
    /// the batch (0 from the single-dispatcher path, which punctuates via
    /// dedicated `Punct` records instead).
    Batch {
        seq: u64,
        wm: Micros,
        pkts: Vec<Packet>,
    },
    /// A watermark broadcast.
    Punct { seq: u64, wm: Micros },
}

impl ReplayMsg {
    fn seq(&self) -> u64 {
        match self {
            ReplayMsg::Batch { seq, .. } | ReplayMsg::Punct { seq, .. } => *seq,
        }
    }
}

fn decode_wal_record(payload: &[u8]) -> Option<ReplayMsg> {
    let mut r = Reader::new(payload);
    match r.u8().ok()? {
        kind @ (KIND_BATCH | KIND_BATCH_WM) => {
            let seq = r.u64().ok()?;
            // Legacy batches (pre-fabric stores, and the single-dispatcher
            // path today) carry no watermark field: it is implicitly 0.
            let wm = if kind == KIND_BATCH_WM {
                r.u64().ok()?
            } else {
                0
            };
            let n = r.u32().ok()? as usize;
            // Variable-width packets: bound the claimed count by what the
            // payload could possibly hold before allocating for it, and
            // demand the record is consumed exactly.
            if n > r.remaining() / MIN_PACKET_BYTES {
                return None;
            }
            let mut pkts = Vec::with_capacity(n);
            let mut prev_ts = 0u64;
            for _ in 0..n {
                pkts.push(read_packet(&mut r, &mut prev_ts)?);
            }
            if !r.is_empty() {
                return None;
            }
            Some(ReplayMsg::Batch { seq, wm, pkts })
        }
        KIND_PUNCT => {
            let seq = r.u64().ok()?;
            let wm = r.u64().ok()?;
            if !r.is_empty() {
                return None;
            }
            Some(ReplayMsg::Punct { seq, wm })
        }
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// File naming
// ---------------------------------------------------------------------------

const MANIFEST_NAME: &str = "MANIFEST";

fn wal_name(shard: usize, first_seq: u64) -> String {
    format!("wal-{shard}-{first_seq:020}.seg")
}

fn ctl_name(id: u64) -> String {
    format!("ctl-{id:020}.seg")
}

fn ckpt_name(shard: usize, version: u64) -> String {
    format!("ckpt-{shard}-{version}.bin")
}

fn parse_two(name: &str, prefix: &str, suffix: &str) -> Option<(usize, u64)> {
    let body = name.strip_prefix(prefix)?.strip_suffix(suffix)?;
    let (a, b) = body.split_once('-')?;
    Some((a.parse().ok()?, b.parse().ok()?))
}

fn parse_wal_name(name: &str) -> Option<(usize, u64)> {
    parse_two(name, "wal-", ".seg")
}

fn parse_ctl_name(name: &str) -> Option<u64> {
    name.strip_prefix("ctl-")?
        .strip_suffix(".seg")?
        .parse()
        .ok()
}

fn parse_ckpt_name(name: &str) -> Option<(usize, u64)> {
    parse_two(name, "ckpt-", ".bin")
}

fn err(detail: impl Into<String>) -> fd_core::Error {
    fd_core::Error::Durability {
        detail: detail.into(),
    }
}

// ---------------------------------------------------------------------------
// Writer-thread commands and the engine-facing sink
// ---------------------------------------------------------------------------

/// Ring depth (messages) between the dispatcher and the WAL writer.
/// Much deeper than the worker rings, and deliberately so: the writer
/// stalls for whole milliseconds inside checkpoint fsyncs, and a ring
/// that fills during one turns every subsequent batch into a
/// sleep/wake round-trip billed to the *dispatcher's* CPU clock. At
/// one `Arc` + a few words per entry, 8192 slots cost ~1 MiB and let
/// the dispatcher ride out multi-ms flushes without ever blocking;
/// if the disk persistently cannot keep up, the full ring is the
/// backpressure that bounds memory.
const WAL_RING_DEPTH: usize = 8192;

enum WalCmd {
    Batch {
        shard: usize,
        seq: u64,
        wm: Micros,
        pkts: Arc<Vec<Packet>>,
    },
    Punct {
        shard: usize,
        seq: u64,
        wm: Micros,
    },
    Commit(CommitState),
    Finish,
}

/// The engine-facing handle to the durability writer thread.
///
/// Cheap by construction: every method is one ring push (the batch
/// travels as an `Arc` clone). Dropping the sink without
/// [`finish`](DurableSink::finish) — e.g. on an unwinding dispatcher —
/// abandons the writer: it stops immediately and performs **no further
/// fsync or rename**, so a half-initialized run can never publish a
/// half-written MANIFEST.
pub(crate) struct DurableSink {
    tx: Option<RingSender<WalCmd>>,
    handle: Option<JoinHandle<()>>,
    degraded: Arc<AtomicBool>,
    abandoned: Arc<AtomicBool>,
    /// Commands held back until the next commit — see [`DurableSink::push`].
    stash: Vec<WalCmd>,
}

/// Stash bound: an engine that streams without ever committing still
/// hands its records over in bursts no larger than this (an `Arc` clone
/// per batch, so the bound is about ring fairness, not memory).
const STASH_MAX: usize = 128;

/// Upper bound on any single hand-off to the WAL writer's ring.
/// Deliberately generous — orders of magnitude above a healthy writer's
/// worst fsync — because timing out here costs durability: a writer that
/// cannot accept a command within this bound is treated exactly like a
/// persistent disk failure (degrade, keep streaming on in-memory
/// supervision) rather than letting a wedged I/O call head-of-line-block
/// the dispatcher forever.
const WAL_SEND_DEADLINE: Duration = Duration::from_secs(10);

impl std::fmt::Debug for DurableSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableSink")
            .field("degraded", &self.degraded())
            .field("abandoned", &self.abandoned.load(Relaxed))
            .finish_non_exhaustive()
    }
}

impl DurableSink {
    /// Spawns the writer thread over a recovered (or fresh) store.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn spawn(
        dir: &Path,
        io_backend: &Arc<dyn IoBackend>,
        fsync: FsyncPolicy,
        segment_bytes: u64,
        recovered: &Recovered,
        slots: Vec<Arc<CheckpointSlot>>,
        telemetry: Arc<EngineTelemetry>,
        pools: Vec<BatchPool<Packet>>,
    ) -> Result<Self, fd_core::Error> {
        assert!(!pools.is_empty(), "one recycle pool per producer");
        let degraded = Arc::new(AtomicBool::new(false));
        let abandoned = Arc::new(AtomicBool::new(false));
        let (tx, rx) = ring::<WalCmd>(WAL_RING_DEPTH);
        let n_shards = slots.len();
        let mut writer = Writer {
            io: Arc::clone(io_backend),
            dir: dir.to_path_buf(),
            fsync,
            segment_bytes: segment_bytes.max(4096),
            wal: (0..n_shards).map(|_| SegWriter::new()).collect(),
            ctl: SegWriter::new(),
            ctl_next_id: recovered.ctl_next_id,
            slots,
            covered: recovered.covered.clone(),
            ckpt_version: recovered.ckpt_version.clone(),
            manifest_version: recovered.manifest_version,
            appends_since_sync: 0,
            last_commit: None,
            telemetry,
            degraded: Arc::clone(&degraded),
            abandoned: Arc::clone(&abandoned),
            payload_buf: Vec::new(),
            frame_buf: Vec::new(),
            pools,
        };
        // Reopen the live segments recovery decided to keep appending to.
        for (s, resume) in recovered.wal_resume.iter().enumerate() {
            if let Some((name, bytes)) = resume {
                writer.wal[s].resume(name.clone(), *bytes);
            }
        }
        if let Some((name, bytes)) = &recovered.ctl_resume {
            writer.ctl.resume(name.clone(), *bytes);
        }
        let handle = std::thread::Builder::new()
            .name("fd-wal-writer".to_owned())
            .spawn(move || writer.run(rx))
            .map_err(|e| err(format!("failed to spawn WAL writer: {e}")))?;
        Ok(Self {
            tx: Some(tx),
            handle: Some(handle),
            degraded,
            abandoned,
            stash: Vec::new(),
        })
    }

    /// Whether the writer hit a persistent disk failure and the engine is
    /// running on in-memory supervision only.
    pub(crate) fn degraded(&self) -> bool {
        self.degraded.load(Relaxed)
    }

    /// Stashes a command for the next commit-time burst.
    ///
    /// Nothing in the WAL is recoverable until a commit record covers it
    /// (recovery resumes from the newest commit and truncates past its
    /// coverage), so shipping records to the writer eagerly buys no
    /// durability — it only costs a ring hand-off per batch, and the
    /// futex wake behind most of those hand-offs is the single biggest
    /// per-batch cost the durable hook can impose on the dispatcher (see
    /// the `durability_overhead` bench). Batching the hand-off to one
    /// burst per commit keeps WAL order intact — batches still precede
    /// their commit on the ring — and collapses the wakes to one.
    /// [`STASH_MAX`] bounds the stash for callers that never commit.
    fn push(&mut self, cmd: WalCmd) {
        if self.degraded() {
            self.stash.clear();
            return;
        }
        self.stash.push(cmd);
        if self.stash.len() >= STASH_MAX {
            self.flush_stash();
        }
    }

    /// Drains the stash onto the writer's ring. Consecutive sends after
    /// the first find the ring non-empty, so the ring's notify elision
    /// makes the whole burst cost a single wake.
    fn flush_stash(&mut self) {
        if self.degraded() || self.tx.is_none() {
            self.stash.clear();
            return;
        }
        let mut dead = false;
        if let Some(tx) = &self.tx {
            for cmd in self.stash.drain(..) {
                if tx.send_deadline(cmd, WAL_SEND_DEADLINE).is_err() {
                    dead = true;
                    break;
                }
            }
        }
        if dead {
            // The writer disappeared (panicked) or sat wedged past the
            // generous deadline; treat both exactly like a persistent
            // disk failure.
            self.degraded.store(true, Relaxed);
            self.stash.clear();
        }
    }

    pub(crate) fn batch(&mut self, shard: usize, seq: u64, pkts: &Arc<Vec<Packet>>, wm: Micros) {
        self.push(WalCmd::Batch {
            shard,
            seq,
            wm,
            pkts: Arc::clone(pkts),
        });
    }

    pub(crate) fn punct(&mut self, shard: usize, seq: u64, wm: Micros) {
        self.push(WalCmd::Punct { shard, seq, wm });
    }

    pub(crate) fn commit(&mut self, c: CommitState) {
        self.push(WalCmd::Commit(c));
        self.flush_stash();
    }

    /// Flushes everything, commits a final manifest, and joins the writer.
    pub(crate) fn finish(&mut self) {
        self.flush_stash();
        if let Some(tx) = self.tx.take() {
            let _ = tx.send(WalCmd::Finish);
        }
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for DurableSink {
    fn drop(&mut self) {
        // Dropped without finish(): the engine is being abandoned, very
        // possibly mid-unwind with half-applied state. Tell the writer to
        // stop *without* any further fsync, rename, or manifest commit —
        // the store stays at its last complete commit.
        self.abandoned.store(true, Relaxed);
        self.tx = None;
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

// ---------------------------------------------------------------------------
// The writer thread
// ---------------------------------------------------------------------------

/// One append-only log (a shard's WAL or the control log) with size-based
/// segment rotation.
struct SegWriter {
    file: Option<Box<dyn IoFile>>,
    name: String,
    bytes: u64,
    dirty: bool,
}

impl SegWriter {
    fn new() -> Self {
        Self {
            file: None,
            name: String::new(),
            bytes: 0,
            dirty: false,
        }
    }

    /// Marks an existing segment (post-recovery) as the one to append to.
    /// The file is opened lazily on the first append.
    fn resume(&mut self, name: String, bytes: u64) {
        self.name = name;
        self.bytes = bytes;
    }

    /// Appends one framed record, rotating to a fresh segment named by
    /// `next_name` when the current one is full. Returns bytes appended.
    fn append(
        &mut self,
        io: &dyn IoBackend,
        dir: &Path,
        frame: &[u8],
        segment_bytes: u64,
        next_name: impl FnOnce() -> String,
    ) -> io::Result<u64> {
        if self.name.is_empty() || self.bytes >= segment_bytes {
            // Seal the old segment durably before moving on, so "sync all
            // open files" at manifest time covers every unsynced byte.
            if let Some(mut f) = self.file.take() {
                f.sync()?;
            }
            self.name = next_name();
            self.bytes = 0;
            self.dirty = false;
        }
        if self.file.is_none() {
            self.file = Some(io.open_append(&crate::io::join(dir, &self.name))?);
        }
        let f = self.file.as_mut().expect("opened above");
        f.append(frame)?;
        self.bytes += frame.len() as u64;
        self.dirty = true;
        Ok(frame.len() as u64)
    }

    fn sync(&mut self) -> io::Result<()> {
        if self.dirty {
            if let Some(f) = self.file.as_mut() {
                f.sync()?;
            }
            self.dirty = false;
        }
        Ok(())
    }
}

struct Writer {
    io: Arc<dyn IoBackend>,
    dir: PathBuf,
    fsync: FsyncPolicy,
    segment_bytes: u64,
    wal: Vec<SegWriter>,
    ctl: SegWriter,
    ctl_next_id: u64,
    slots: Vec<Arc<CheckpointSlot>>,
    /// Per-shard WAL sequence covered by the manifest-committed checkpoint.
    covered: Vec<u64>,
    ckpt_version: Vec<u64>,
    manifest_version: u64,
    appends_since_sync: u64,
    last_commit: Option<CommitState>,
    telemetry: Arc<EngineTelemetry>,
    degraded: Arc<AtomicBool>,
    abandoned: Arc<AtomicBool>,
    payload_buf: Vec<u8>,
    frame_buf: Vec<u8>,
    /// The batch-recycling pools, one per producer (a single entry for
    /// the single-dispatcher engine). The WAL holds a third `Arc` on
    /// every batch (dispatcher backlog, worker, WAL), and the recycling
    /// protocol is "last holder returns the buffer" — so the writer must
    /// play too, or every batch it outlives leaks from the pool and the
    /// dispatcher pays a fresh allocation (plus the page faults of filling
    /// cold memory) per flush. The `durability_overhead` bench gates this.
    pools: Vec<BatchPool<Packet>>,
}

impl Writer {
    fn run(mut self, rx: RingReceiver<WalCmd>) {
        while let Some(cmd) = rx.recv() {
            if self.abandoned.load(Relaxed) {
                // Engine dropped without finish(): stop dead. No flush, no
                // fsync, no rename — see `Drop for DurableSink`.
                return;
            }
            if self.degraded.load(Relaxed) {
                match cmd {
                    WalCmd::Finish => return,
                    // Drain and discard so the dispatcher never blocks —
                    // but keep recycling, as below.
                    WalCmd::Batch { seq, pkts, .. } => self.recycle(seq, pkts),
                    _ => {}
                }
                continue;
            }
            let result = match cmd {
                WalCmd::Batch {
                    shard,
                    seq,
                    wm,
                    pkts,
                } => {
                    let r = self.append_batch(shard, seq, wm, &pkts);
                    self.recycle(seq, pkts);
                    r
                }
                WalCmd::Punct { shard, seq, wm } => self.append_punct(shard, seq, wm),
                WalCmd::Commit(c) => self.handle_commit(c),
                WalCmd::Finish => {
                    if let Err(e) = self.final_flush() {
                        self.degrade("final flush", &e);
                    }
                    return;
                }
            };
            if let Err(e) = result {
                self.degrade("WAL write", &e);
            }
        }
        // Channel closed without Finish: abandoned (see above).
    }

    /// Drops the writer's `Arc` on a batch, returning the buffer to the
    /// *owning producer's* pool when this was the last holder. The owner
    /// is recoverable from the seq — fabric epochs obey
    /// `producer = (seq − 1) mod P` (the determinism rule) — so each
    /// producer's bounded pool is refilled by its own buffers instead of
    /// all recycling landing on (and overflowing) producer 0's.
    fn recycle(&self, seq: u64, pkts: Arc<Vec<Packet>>) {
        if let Ok(buf) = Arc::try_unwrap(pkts) {
            let p = (seq.saturating_sub(1) % self.pools.len() as u64) as usize;
            self.pools[p].put(buf);
        }
    }

    fn degrade(&mut self, what: &str, e: &io::Error) {
        self.degraded.store(true, Relaxed);
        self.telemetry.durability_degraded.store(1, Relaxed);
        eprintln!(
            "fd-durability: {what} failed ({e}); \
             continuing on in-memory supervision without durable persistence"
        );
        // Drop the file handles: no further writes will happen, and on
        // some fault kinds (ENOSPC) holding them open serves nothing.
        for w in &mut self.wal {
            w.file = None;
        }
        self.ctl.file = None;
    }

    /// Frames `self.payload_buf` and appends it to the given log.
    fn append_framed(&mut self, shard: Option<usize>, rotate_id: u64) -> io::Result<()> {
        self.frame_buf.clear();
        put_frame(&mut self.frame_buf, &self.payload_buf);
        let seg = match shard {
            Some(s) => &mut self.wal[s],
            None => &mut self.ctl,
        };
        let written = seg.append(
            self.io.as_ref(),
            &self.dir,
            &self.frame_buf,
            self.segment_bytes,
            || match shard {
                Some(s) => wal_name(s, rotate_id),
                None => ctl_name(rotate_id),
            },
        )?;
        self.telemetry.wal_bytes_written.fetch_add(written, Relaxed);
        self.appends_since_sync += 1;
        match self.fsync {
            FsyncPolicy::EveryBatch => {
                let seg = match shard {
                    Some(s) => &mut self.wal[s],
                    None => &mut self.ctl,
                };
                seg.sync()?;
                self.appends_since_sync = 0;
            }
            FsyncPolicy::EveryN(n) if self.appends_since_sync >= n => {
                self.sync_all()?;
                self.appends_since_sync = 0;
            }
            _ => {}
        }
        Ok(())
    }

    fn append_batch(
        &mut self,
        shard: usize,
        seq: u64,
        wm: Micros,
        pkts: &[Packet],
    ) -> io::Result<()> {
        self.payload_buf.clear();
        if wm == 0 {
            // Legacy layout — keeps single-dispatcher stores (and fabric
            // epochs sealed before any watermark) byte-identical to
            // pre-fabric versions of this engine.
            self.payload_buf.push(KIND_BATCH);
            put_u64(&mut self.payload_buf, seq);
        } else {
            self.payload_buf.push(KIND_BATCH_WM);
            put_u64(&mut self.payload_buf, seq);
            put_u64(&mut self.payload_buf, wm);
        }
        put_u32(&mut self.payload_buf, pkts.len() as u32);
        let mut prev_ts = 0u64;
        for p in pkts {
            put_packet(&mut self.payload_buf, p, &mut prev_ts);
        }
        self.append_framed(Some(shard), seq)
    }

    fn append_punct(&mut self, shard: usize, seq: u64, wm: Micros) -> io::Result<()> {
        self.payload_buf.clear();
        self.payload_buf.push(KIND_PUNCT);
        put_u64(&mut self.payload_buf, seq);
        put_u64(&mut self.payload_buf, wm);
        self.append_framed(Some(shard), seq)
    }

    fn handle_commit(&mut self, c: CommitState) -> io::Result<()> {
        self.payload_buf.clear();
        c.encode(&mut self.payload_buf);
        let id = self.ctl_next_id;
        self.ctl_next_id += 1; // only consumed if the append rotates
        let rotated_before = self.ctl.name.clone();
        self.append_framed(None, id)?;
        if self.ctl.name == rotated_before {
            self.ctl_next_id -= 1; // no rotation: the id is still free
        }
        self.last_commit = Some(c.clone());
        self.persist_checkpoints(&c, false)
    }

    /// Persists any worker checkpoint that advanced past the manifest
    /// coverage **without overshooting commit `c`** — a snapshot newer
    /// than the newest durable commit would make recovery impossible
    /// (the WAL tail between coverage and the commit must replay onto
    /// the checkpoint). Then commits a new manifest and garbage-collects.
    fn persist_checkpoints(&mut self, c: &CommitState, force_manifest: bool) -> io::Result<()> {
        let mut advanced: Vec<(usize, u64, Vec<u8>)> = Vec::new();
        for (s, slot) in self.slots.iter().enumerate() {
            // Cheap pre-check on the atomic seq before paying for a clone
            // of the blob.
            let seq = slot.seq();
            if seq > self.covered[s] && seq <= c.hi[s] {
                if let Some((seq, bytes)) = slot.load() {
                    // The slot may have moved between the two reads;
                    // re-validate against the commit bound.
                    if seq > self.covered[s] && seq <= c.hi[s] {
                        advanced.push((s, seq, bytes));
                    }
                }
            }
        }
        if advanced.is_empty() && !force_manifest {
            return Ok(());
        }
        if self.abandoned.load(Relaxed) {
            return Ok(());
        }
        for (s, seq, bytes) in advanced {
            self.persist_one_checkpoint(s, seq, &bytes)?;
        }
        // Everything the new manifest implies must be durable before the
        // rename publishes it: WAL tails (recovery needs them to reach a
        // commit ≥ coverage) and the control log carrying that commit.
        self.sync_all()?;
        self.write_manifest()?;
        self.gc();
        Ok(())
    }

    fn persist_one_checkpoint(&mut self, shard: usize, seq: u64, blob: &[u8]) -> io::Result<()> {
        let version = self.ckpt_version[shard] + 1;
        let final_name = ckpt_name(shard, version);
        let tmp_name = format!("{final_name}.tmp");
        self.payload_buf.clear();
        put_u64(&mut self.payload_buf, seq);
        self.payload_buf.extend_from_slice(blob);
        self.frame_buf.clear();
        put_u32(&mut self.frame_buf, MAGIC_CKPT);
        put_frame(&mut self.frame_buf, &self.payload_buf);
        let tmp_path = crate::io::join(&self.dir, &tmp_name);
        {
            let mut f = self.io.create(&tmp_path)?;
            f.append(&self.frame_buf)?;
            f.sync()?;
        }
        // Read-back verification: a silently corrupted checkpoint (bad
        // RAM, lying disk, injected corrupt-byte fault) must not be
        // published — once the manifest points at it and the WAL below it
        // is GC'd, recovery would have nowhere to go.
        let back = self.io.read(&tmp_path)?;
        if back != self.frame_buf {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("checkpoint {final_name} failed read-back verification"),
            ));
        }
        self.io
            .rename(&tmp_path, &crate::io::join(&self.dir, &final_name))?;
        self.ckpt_version[shard] = version;
        self.covered[shard] = seq;
        self.telemetry.checkpoints_persisted.fetch_add(1, Relaxed);
        Ok(())
    }

    fn sync_all(&mut self) -> io::Result<()> {
        for w in &mut self.wal {
            w.sync()?;
        }
        self.ctl.sync()?;
        self.appends_since_sync = 0;
        Ok(())
    }

    fn write_manifest(&mut self) -> io::Result<()> {
        let version = self.manifest_version + 1;
        self.payload_buf.clear();
        put_u64(&mut self.payload_buf, version);
        put_u32(&mut self.payload_buf, self.covered.len() as u32);
        for (v, c) in self.ckpt_version.iter().zip(&self.covered) {
            put_u64(&mut self.payload_buf, *v);
            put_u64(&mut self.payload_buf, *c);
        }
        self.frame_buf.clear();
        put_u32(&mut self.frame_buf, MAGIC_MANIFEST);
        put_frame(&mut self.frame_buf, &self.payload_buf);
        let tmp_path = crate::io::join(&self.dir, "MANIFEST.tmp");
        {
            let mut f = self.io.create(&tmp_path)?;
            f.append(&self.frame_buf)?;
            f.sync()?;
        }
        let back = self.io.read(&tmp_path)?;
        if back != self.frame_buf {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "manifest failed read-back verification",
            ));
        }
        self.io
            .rename(&tmp_path, &crate::io::join(&self.dir, MANIFEST_NAME))?;
        self.io.sync_dir(&self.dir)?;
        self.manifest_version = version;
        Ok(())
    }

    /// Stateless garbage collection by directory listing, run after every
    /// manifest commit. Best-effort: a failed delete is retried at the
    /// next commit, never a degradation.
    fn gc(&mut self) {
        let Ok(names) = self.io.list(&self.dir) else {
            return;
        };
        let n = self.covered.len();
        let mut wal_segs: Vec<Vec<u64>> = vec![Vec::new(); n];
        for name in &names {
            if let Some((s, first)) = parse_wal_name(name) {
                if s < n {
                    wal_segs[s].push(first);
                }
            }
        }
        for (s, firsts) in wal_segs.iter_mut().enumerate() {
            firsts.sort_unstable();
            // Segment i spans [firsts[i], firsts[i+1] - 1]; droppable when
            // its whole span is at or below the manifest coverage. The
            // newest segment is always kept (it is still being written).
            for w in firsts.windows(2) {
                if w[1].saturating_sub(1) <= self.covered[s] {
                    let _ = self
                        .io
                        .remove_file(&crate::io::join(&self.dir, &wal_name(s, w[0])));
                }
            }
        }
        // Sealed control segments: the commit that produced this manifest
        // lives in the current segment, and any older commit is subsumed
        // by it, so every other ctl segment is droppable.
        for name in &names {
            if parse_ctl_name(name).is_some() && *name != self.ctl.name {
                let _ = self.io.remove_file(&crate::io::join(&self.dir, name));
            }
        }
        // Checkpoints older than the manifest-current version, and any
        // leftover tmp file from a crashed writer.
        for name in &names {
            if let Some((s, v)) = parse_ckpt_name(name) {
                if s < n && v < self.ckpt_version[s] {
                    let _ = self.io.remove_file(&crate::io::join(&self.dir, name));
                }
            } else if name.ends_with(".tmp") {
                let _ = self.io.remove_file(&crate::io::join(&self.dir, name));
            }
        }
    }

    /// Clean shutdown: make everything written so far durable and commit
    /// a final manifest (regardless of fsync policy), so a clean run's
    /// store recovers with zero replay.
    fn final_flush(&mut self) -> io::Result<()> {
        match self.last_commit.clone() {
            Some(c) => self.persist_checkpoints(&c, true),
            None => self.sync_all(),
        }
    }
}

// ---------------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------------

/// Everything [`recover`] learned from a store directory, consumed by
/// [`ShardedEngine::try_durable`](crate::shard::ShardedEngine::try_durable)
/// to preload seats and by [`DurableSink::spawn`] to resume the logs.
#[derive(Debug)]
pub(crate) struct Recovered {
    /// The chosen durable commit (all-zero for a fresh store).
    pub commit: CommitState,
    /// Per shard: the manifest-current checkpoint (covered seq, engine
    /// blob), if one was ever persisted.
    pub ckpts: Vec<Option<(u64, Vec<u8>)>>,
    /// Per shard: WAL records in `(covered, hi]`, the replay tail.
    pub replay: Vec<Vec<ReplayMsg>>,
    /// Torn records truncated plus unreachable segments dropped.
    pub truncated: u64,
    /// Manifest bookkeeping for the resuming writer.
    pub covered: Vec<u64>,
    pub ckpt_version: Vec<u64>,
    pub manifest_version: u64,
    /// Per shard: the segment to keep appending to (name, byte length).
    pub wal_resume: Vec<Option<(String, u64)>>,
    pub ctl_resume: Option<(String, u64)>,
    pub ctl_next_id: u64,
    /// `false` when the directory held no prior store.
    pub resumed: bool,
}

impl Recovered {
    fn fresh(n_shards: usize) -> Self {
        Self {
            commit: CommitState::zero(n_shards),
            ckpts: vec![None; n_shards],
            replay: (0..n_shards).map(|_| Vec::new()).collect(),
            truncated: 0,
            covered: vec![0; n_shards],
            ckpt_version: vec![0; n_shards],
            manifest_version: 0,
            wal_resume: vec![None; n_shards],
            ctl_resume: None,
            ctl_next_id: 1,
            resumed: false,
        }
    }
}

/// One scanned log segment: its verified records and where the valid
/// prefix ends.
struct SegScan<T> {
    name: String,
    /// (start offset, end offset, decoded record).
    recs: Vec<(u64, u64, T)>,
    /// Length of the valid prefix (== file length when clean).
    valid_len: u64,
    /// Whether a torn/corrupt record was cut off at `valid_len`.
    torn: bool,
}

/// Walks the frames of one segment, decoding each payload; stops at the
/// first torn frame or undecodable payload and reports the cut point.
fn scan_segment<T>(
    io: &dyn IoBackend,
    dir: &Path,
    name: &str,
    mut decode: impl FnMut(&[u8]) -> Option<T>,
) -> Result<SegScan<T>, fd_core::Error> {
    let data = io
        .read(&crate::io::join(dir, name))
        .map_err(|e| err(format!("cannot read {name}: {e}")))?;
    let mut recs = Vec::new();
    let mut off = 0usize;
    let mut torn = false;
    loop {
        match read_frame(&data[off..]) {
            Frame::End => break,
            Frame::Torn => {
                torn = true;
                break;
            }
            Frame::Complete { payload, consumed } => match decode(payload) {
                Some(rec) => {
                    recs.push((off as u64, (off + consumed) as u64, rec));
                    off += consumed;
                }
                None => {
                    // Framed correctly but semantically invalid: same
                    // treatment as a torn record — cut here.
                    torn = true;
                    break;
                }
            },
        }
    }
    Ok(SegScan {
        name: name.to_owned(),
        recs,
        valid_len: off as u64,
        torn,
    })
}

/// Scans an ordered chain of segments belonging to one log. After a torn
/// segment, later segments are unreachable (their records would leave a
/// hole) and are dropped whole. Returns the per-segment scans plus how
/// many cuts were made.
fn scan_chain<T>(
    io: &dyn IoBackend,
    dir: &Path,
    names: &[String],
    decode: impl Fn(&[u8]) -> Option<T> + Copy,
) -> Result<(Vec<SegScan<T>>, u64), fd_core::Error> {
    let mut scans = Vec::new();
    let mut truncated = 0u64;
    let mut cut = false;
    for name in names {
        if cut {
            truncated += 1;
            io.remove_file(&crate::io::join(dir, name))
                .map_err(|e| err(format!("cannot drop unreachable segment {name}: {e}")))?;
            continue;
        }
        let scan = scan_segment(io, dir, name, decode)?;
        if scan.torn {
            truncated += 1;
            io.truncate(&crate::io::join(dir, name), scan.valid_len)
                .map_err(|e| err(format!("cannot truncate torn tail of {name}: {e}")))?;
            cut = true;
        }
        scans.push(scan);
    }
    Ok((scans, truncated))
}

/// Scans a store directory and reconstructs the newest consistent state
/// (see the module docs for the commit-selection rule). Never panics on
/// any byte-level damage: torn tails are truncated and counted; damage
/// below the last commit is an explicit error.
pub(crate) fn recover(
    io: &Arc<dyn IoBackend>,
    dir: &Path,
    n_shards: usize,
) -> Result<Recovered, fd_core::Error> {
    let io = io.as_ref();
    io.create_dir_all(dir)
        .map_err(|e| err(format!("cannot create {}: {e}", dir.display())))?;
    let names = io
        .list(dir)
        .map_err(|e| err(format!("cannot list {}: {e}", dir.display())))?;

    let mut wal_names: Vec<Vec<(u64, String)>> = vec![Vec::new(); n_shards];
    let mut ctl_names: Vec<(u64, String)> = Vec::new();
    let mut ckpt_files: Vec<Vec<(u64, String)>> = vec![Vec::new(); n_shards];
    let mut manifest_present = false;
    for name in &names {
        if name == MANIFEST_NAME {
            manifest_present = true;
        } else if let Some((s, first)) = parse_wal_name(name) {
            if s >= n_shards {
                return Err(err(format!(
                    "store has WAL for shard {s} but the engine has {n_shards} shards \
                     (shard count cannot change across restarts)"
                )));
            }
            wal_names[s].push((first, name.clone()));
        } else if let Some(id) = parse_ctl_name(name) {
            ctl_names.push((id, name.clone()));
        } else if let Some((s, v)) = parse_ckpt_name(name) {
            if s < n_shards {
                ckpt_files[s].push((v, name.clone()));
            }
        }
    }
    if !manifest_present && ctl_names.is_empty() && wal_names.iter().all(Vec::is_empty) {
        return Ok(Recovered::fresh(n_shards));
    }

    // --- Manifest ---------------------------------------------------------
    let (manifest_version, ckpt_version, covered) = if manifest_present {
        let data = io
            .read(&crate::io::join(dir, MANIFEST_NAME))
            .map_err(|e| err(format!("cannot read MANIFEST: {e}")))?;
        parse_manifest(&data, n_shards)?
    } else {
        // Store created, crashed before the first manifest commit: valid,
        // with zero coverage everywhere.
        (0, vec![0; n_shards], vec![0; n_shards])
    };

    // --- Checkpoints ------------------------------------------------------
    let mut ckpts: Vec<Option<(u64, Vec<u8>)>> = vec![None; n_shards];
    for s in 0..n_shards {
        if ckpt_version[s] == 0 {
            continue;
        }
        let name = ckpt_name(s, ckpt_version[s]);
        let data = io.read(&crate::io::join(dir, &name)).map_err(|e| {
            err(format!(
                "manifest names {name} but it cannot be read: {e} \
                 (the WAL below its coverage may be gone — refusing to guess)"
            ))
        })?;
        let (seq, blob) = parse_ckpt(&data, &name)?;
        if seq != covered[s] {
            return Err(err(format!(
                "{name} covers seq {seq} but the manifest says {}",
                covered[s]
            )));
        }
        ckpts[s] = Some((seq, blob));
    }

    let mut truncated = 0u64;

    // --- Per-shard WAL scan ----------------------------------------------
    let mut replay_all: Vec<Vec<ReplayMsg>> = Vec::with_capacity(n_shards);
    let mut wal_scans: Vec<Vec<SegScan<ReplayMsg>>> = Vec::with_capacity(n_shards);
    let mut last_good: Vec<u64> = Vec::with_capacity(n_shards);
    for s in 0..n_shards {
        wal_names[s].sort_unstable();
        let names: Vec<String> = wal_names[s].iter().map(|(_, n)| n.clone()).collect();
        let (mut scans, cuts) = scan_chain(io, dir, &names, decode_wal_record)?;
        truncated += cuts;
        // Enforce sequence contiguity across the whole chain: a gap means
        // records were lost out from under us; everything at and past the
        // gap is unusable.
        let mut expect: Option<u64> = None;
        let mut gap_cut: Option<(usize, u64)> = None; // (segment idx, offset)
        'outer: for (i, scan) in scans.iter().enumerate() {
            for (start, _end, rec) in &scan.recs {
                let seq = rec.seq();
                if let Some(e) = expect {
                    if seq != e {
                        gap_cut = Some((i, *start));
                        break 'outer;
                    }
                }
                expect = Some(seq + 1);
            }
        }
        if let Some((i, offset)) = gap_cut {
            truncated += 1;
            io.truncate(&crate::io::join(dir, &scans[i].name), offset)
                .map_err(|e| err(format!("cannot truncate WAL gap: {e}")))?;
            scans[i].recs.retain(|(start, _, _)| *start < offset);
            scans[i].valid_len = offset;
            for dropped in scans.drain(i + 1..) {
                truncated += 1;
                io.remove_file(&crate::io::join(dir, &dropped.name))
                    .map_err(|e| err(format!("cannot drop segment past WAL gap: {e}")))?;
            }
        }
        let tail_seq = scans
            .iter()
            .rev()
            .find_map(|sc| sc.recs.last().map(|(_, _, r)| r.seq()))
            .unwrap_or(covered[s]);
        // The replay tail must connect to the checkpoint coverage: the
        // first record above `covered` has to be `covered + 1`.
        let first_above = scans
            .iter()
            .flat_map(|sc| sc.recs.iter())
            .map(|(_, _, r)| r.seq())
            .find(|&q| q > covered[s]);
        let connected = match first_above {
            Some(q) => q == covered[s] + 1,
            None => true,
        };
        if !connected {
            return Err(err(format!(
                "shard {s}: WAL resumes at seq {} but the checkpoint covers only {} \
                 — records in between are missing",
                first_above.unwrap_or(0),
                covered[s]
            )));
        }
        last_good.push(tail_seq.max(covered[s]));
        wal_scans.push(scans);
        replay_all.push(Vec::new()); // filled after commit selection
    }

    // --- Control log scan -------------------------------------------------
    ctl_names.sort_unstable();
    let ctl_name_list: Vec<String> = ctl_names.iter().map(|(_, n)| n.clone()).collect();
    let decode_commit = |payload: &[u8]| -> Option<CommitState> {
        let mut r = Reader::new(payload);
        if r.u8().ok()? != KIND_COMMIT {
            return None;
        }
        CommitState::decode(&mut r, n_shards)
    };
    let (mut ctl_scans, cuts) = scan_chain(io, dir, &ctl_name_list, decode_commit)?;
    truncated += cuts;

    // --- Commit selection -------------------------------------------------
    // Newest commit whose hi-vector the on-disk state can actually honor.
    let mut chosen: Option<(usize, usize)> = None; // (segment idx, record idx)
    'select: for i in (0..ctl_scans.len()).rev() {
        for j in (0..ctl_scans[i].recs.len()).rev() {
            let c = &ctl_scans[i].recs[j].2;
            let ok = (0..n_shards).all(|s| covered[s] <= c.hi[s] && c.hi[s] <= last_good[s]);
            if ok {
                chosen = Some((i, j));
                break 'select;
            }
        }
    }
    let commit = match chosen {
        Some((i, j)) => ctl_scans[i].recs[j].2.clone(),
        None => {
            let any_commit = ctl_scans.iter().any(|sc| !sc.recs.is_empty());
            if any_commit || covered.iter().any(|&c| c > 0) {
                return Err(err(
                    "no commit record is reachable from the on-disk checkpoints and WAL \
                     (the store is damaged below its last commit point)",
                ));
            }
            // No commits ever made it to disk and nothing is checkpointed:
            // the baseline (position 0) is the consistent state.
            CommitState::zero(n_shards)
        }
    };

    // --- Physical truncation beyond the chosen commit ----------------------
    if let Some((i, j)) = chosen {
        let end = ctl_scans[i].recs[j].1;
        if ctl_scans[i].valid_len > end {
            io.truncate(&crate::io::join(dir, &ctl_scans[i].name), end)
                .map_err(|e| err(format!("cannot truncate control log: {e}")))?;
            ctl_scans[i].recs.truncate(j + 1);
            ctl_scans[i].valid_len = end;
        }
        for dropped in ctl_scans.drain(i + 1..) {
            io.remove_file(&crate::io::join(dir, &dropped.name))
                .map_err(|e| err(format!("cannot drop control segment: {e}")))?;
        }
    } else {
        // Baseline: any (empty or fully torn) control segments are useless.
        for dropped in ctl_scans.drain(..) {
            if dropped.valid_len == 0 {
                io.remove_file(&crate::io::join(dir, &dropped.name))
                    .map_err(|e| err(format!("cannot drop empty control segment: {e}")))?;
            }
        }
    }
    for s in 0..n_shards {
        let hi = commit.hi[s];
        let scans = &mut wal_scans[s];
        let mut cut_at: Option<(usize, u64)> = None;
        'find: for (i, scan) in scans.iter().enumerate() {
            for (start, _end, rec) in &scan.recs {
                if rec.seq() > hi {
                    cut_at = Some((i, *start));
                    break 'find;
                }
            }
        }
        if let Some((i, offset)) = cut_at {
            io.truncate(&crate::io::join(dir, &scans[i].name), offset)
                .map_err(|e| err(format!("cannot truncate WAL past commit: {e}")))?;
            scans[i].recs.retain(|(start, _, _)| *start < offset);
            scans[i].valid_len = offset;
            for dropped in scans.drain(i + 1..) {
                io.remove_file(&crate::io::join(dir, &dropped.name))
                    .map_err(|e| err(format!("cannot drop WAL segment past commit: {e}")))?;
            }
        }
        replay_all[s] = scans
            .iter()
            .flat_map(|sc| sc.recs.iter())
            .filter(|(_, _, r)| r.seq() > covered[s])
            .map(|(_, _, r)| r.clone())
            .collect();
    }

    // --- Resume points for the writer --------------------------------------
    let wal_resume: Vec<Option<(String, u64)>> = wal_scans
        .iter()
        .map(|scans| scans.last().map(|sc| (sc.name.clone(), sc.valid_len)))
        .collect();
    let ctl_resume = ctl_scans.last().map(|sc| (sc.name.clone(), sc.valid_len));
    let ctl_next_id = ctl_names.iter().map(|(id, _)| *id + 1).max().unwrap_or(1);

    Ok(Recovered {
        commit,
        ckpts,
        replay: replay_all,
        truncated,
        covered,
        ckpt_version,
        manifest_version,
        wal_resume,
        ctl_resume,
        ctl_next_id,
        resumed: true,
    })
}

fn parse_manifest(
    data: &[u8],
    n_shards: usize,
) -> Result<(u64, Vec<u64>, Vec<u64>), fd_core::Error> {
    let bad = |why: &str| err(format!("MANIFEST is unreadable ({why})"));
    if data.len() < 4
        || u32::from_le_bytes(data[0..4].try_into().expect("4 bytes")) != MAGIC_MANIFEST
    {
        return Err(bad("bad magic"));
    }
    let payload = match read_frame(&data[4..]) {
        Frame::Complete { payload, consumed } if 4 + consumed == data.len() => payload,
        _ => return Err(bad("torn or oversized frame")),
    };
    let mut r = Reader::new(payload);
    let codec = |_e| bad("truncated payload");
    let version = r.u64().map_err(codec)?;
    let n = r.u32().map_err(codec)? as usize;
    if n != n_shards {
        return Err(err(format!(
            "store was written with {n} shards but the engine has {n_shards} \
             (shard count cannot change across restarts)"
        )));
    }
    let mut ckpt_version = Vec::with_capacity(n);
    let mut covered = Vec::with_capacity(n);
    for _ in 0..n {
        ckpt_version.push(r.u64().map_err(codec)?);
        covered.push(r.u64().map_err(codec)?);
    }
    if !r.is_empty() {
        return Err(bad("trailing bytes"));
    }
    Ok((version, ckpt_version, covered))
}

fn parse_ckpt(data: &[u8], name: &str) -> Result<(u64, Vec<u8>), fd_core::Error> {
    let bad = |why: &str| {
        err(format!(
            "checkpoint {name} is corrupt ({why}) and the WAL below its coverage \
             may be gone — refusing to guess"
        ))
    };
    if data.len() < 4 || u32::from_le_bytes(data[0..4].try_into().expect("4 bytes")) != MAGIC_CKPT {
        return Err(bad("bad magic"));
    }
    let payload = match read_frame(&data[4..]) {
        Frame::Complete { payload, consumed } if 4 + consumed == data.len() => payload,
        _ => return Err(bad("checksum or length mismatch")),
    };
    let mut r = Reader::new(payload);
    let seq = r.u64().map_err(|_| bad("truncated payload"))?;
    Ok((seq, payload[8..].to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fsync_policy_parses() {
        assert_eq!(FsyncPolicy::parse("batch"), Some(FsyncPolicy::EveryBatch));
        assert_eq!(
            FsyncPolicy::parse("checkpoint"),
            Some(FsyncPolicy::OnCheckpoint)
        );
        assert_eq!(
            FsyncPolicy::parse("every:64"),
            Some(FsyncPolicy::EveryN(64))
        );
        for bad in ["", "every", "every:", "every:0", "every:x", "always"] {
            assert_eq!(FsyncPolicy::parse(bad), None, "spec {bad:?}");
        }
    }

    #[test]
    fn packet_roundtrips_through_wal_encoding() {
        let p = Packet {
            ts: 123_456_789,
            src_ip: 0xDEAD_BEEF,
            dst_ip: 0x0A00_0001,
            src_port: 54321,
            dst_port: 443,
            len: 1500,
            proto: Proto::Udp,
        };
        // Out-of-order second packet: the ts delta goes negative (and the
        // first delta is the full absolute value) — both must round-trip
        // exactly through the zigzag wrapping arithmetic.
        let q = Packet {
            ts: 99,
            src_ip: 0,
            dst_ip: u32::MAX,
            src_port: 0,
            dst_port: u16::MAX,
            len: u32::MAX,
            proto: Proto::Tcp,
        };
        let mut buf = Vec::new();
        let mut prev = 0u64;
        put_packet(&mut buf, &p, &mut prev);
        put_packet(&mut buf, &q, &mut prev);
        let mut r = Reader::new(&buf);
        let mut prev = 0u64;
        assert_eq!(read_packet(&mut r, &mut prev).expect("decode"), p);
        assert_eq!(read_packet(&mut r, &mut prev).expect("decode"), q);
        assert!(r.is_empty());
    }

    #[test]
    fn uvarint_roundtrips_and_rejects_overlong() {
        for v in [0u64, 1, 127, 128, 300, 16_383, 16_384, u64::MAX] {
            let mut buf = Vec::new();
            put_uvarint(&mut buf, v);
            let mut r = Reader::new(&buf);
            assert_eq!(read_uvarint(&mut r), Some(v), "value {v}");
            assert!(r.is_empty());
        }
        // 10 continuation bytes (no terminator within a u64's width) and a
        // 10th byte carrying more than the top bit both decode to None.
        let mut r = Reader::new(&[0x80u8; 10]);
        assert_eq!(read_uvarint(&mut r), None);
        let mut overflow = [0x80u8; 10];
        overflow[9] = 0x02;
        let mut r = Reader::new(&overflow);
        assert_eq!(read_uvarint(&mut r), None);
    }

    #[test]
    fn commit_state_roundtrips() {
        let c = CommitState {
            position: 10_000,
            watermark: 77_000_000,
            closed_below: 12,
            rr: 3,
            tuples_in: 10_000,
            filtered: 55,
            late_drops: 7,
            hi: vec![101, 99, 0, 42],
            producers: Vec::new(),
        };
        let mut buf = Vec::new();
        c.encode(&mut buf);
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), KIND_COMMIT);
        assert_eq!(CommitState::decode(&mut r, 4).expect("decode"), c);
        // Wrong shard count is rejected, not misread.
        let mut r = Reader::new(&buf);
        let _ = r.u8();
        assert!(CommitState::decode(&mut r, 3).is_none());
    }

    #[test]
    fn fabric_commit_state_roundtrips_producer_blocks() {
        let c = CommitState {
            position: 4_000,
            watermark: 90_000_000,
            closed_below: 8,
            rr: 1,
            tuples_in: 4_000,
            filtered: 12,
            late_drops: 3,
            hi: vec![7, 7],
            producers: vec![
                ProducerCommit {
                    watermark: 90_000_000,
                    closed_below: 8,
                    rr: 0,
                    epochs: 4,
                    tuples_in: 2_600,
                    filtered: 9,
                    late_drops: 1,
                },
                ProducerCommit {
                    watermark: 88_000_000,
                    closed_below: 7,
                    rr: 1,
                    epochs: 3,
                    tuples_in: 1_400,
                    filtered: 3,
                    late_drops: 2,
                },
            ],
        };
        let mut buf = Vec::new();
        c.encode(&mut buf);
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), KIND_COMMIT);
        assert_eq!(CommitState::decode(&mut r, 2).expect("decode"), c);
        // A truncated producer block is rejected, never misread.
        let mut r = Reader::new(&buf[..buf.len() - 1]);
        let _ = r.u8();
        assert!(CommitState::decode(&mut r, 2).is_none());
    }

    #[test]
    fn wal_records_roundtrip_and_reject_garbage() {
        let pkts = vec![
            Packet {
                ts: 5,
                src_ip: 1,
                dst_ip: 2,
                src_port: 3,
                dst_port: 4,
                len: 100,
                proto: Proto::Tcp,
            };
            3
        ];
        let mut buf = Vec::new();
        buf.push(KIND_BATCH_WM);
        put_u64(&mut buf, 17);
        put_u64(&mut buf, 42_000_000);
        put_u32(&mut buf, pkts.len() as u32);
        let mut prev = 0u64;
        for p in &pkts {
            put_packet(&mut buf, p, &mut prev);
        }
        match decode_wal_record(&buf) {
            Some(ReplayMsg::Batch { seq, wm, pkts: got }) => {
                assert_eq!(seq, 17);
                assert_eq!(wm, 42_000_000);
                assert_eq!(got, pkts);
            }
            other => panic!("bad decode: {other:?}"),
        }
        // The legacy batch layout — no watermark field, exactly what every
        // pre-fabric store on disk holds — must keep parsing (wm = 0), not
        // be cut off as a torn record.
        let mut legacy = Vec::new();
        legacy.push(KIND_BATCH);
        put_u64(&mut legacy, 17);
        put_u32(&mut legacy, pkts.len() as u32);
        let mut prev = 0u64;
        for p in &pkts {
            put_packet(&mut legacy, p, &mut prev);
        }
        match decode_wal_record(&legacy) {
            Some(ReplayMsg::Batch { seq, wm, pkts: got }) => {
                assert_eq!(seq, 17);
                assert_eq!(wm, 0);
                assert_eq!(got, pkts);
            }
            other => panic!("bad legacy decode: {other:?}"),
        }
        // Truncated, oversized, and unknown-kind payloads all decode to
        // None (→ torn-record treatment), never panic.
        assert!(decode_wal_record(&buf[..buf.len() - 1]).is_none());
        let mut extended = buf.clone();
        extended.push(0);
        assert!(decode_wal_record(&extended).is_none());
        assert!(decode_wal_record(&[9, 0, 0]).is_none());
        assert!(decode_wal_record(&[]).is_none());
    }

    #[test]
    fn pre_fabric_store_recovers_without_truncation() {
        // A store laid out byte-for-byte as the engine wrote it before the
        // ingress fabric existed: watermark-less KIND_BATCH records, a
        // KIND_PUNCT, a commit with no producer blocks, and no MANIFEST
        // (crashed before the first manifest commit — zero coverage).
        // Opening it must parse every record — not misread the new wm
        // field into the old layout and silently truncate the tail as
        // torn.
        let dir = std::env::temp_dir().join(format!(
            "fd-legacy-store-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let pkts = vec![
            Packet {
                ts: 1_000,
                src_ip: 1,
                dst_ip: 2,
                src_port: 3,
                dst_port: 4,
                len: 100,
                proto: Proto::Tcp,
            };
            5
        ];
        let mut wal = Vec::new();
        for seq in 1..=2u64 {
            let mut payload = Vec::new();
            payload.push(KIND_BATCH);
            put_u64(&mut payload, seq);
            put_u32(&mut payload, pkts.len() as u32);
            let mut prev = 0u64;
            for p in &pkts {
                put_packet(&mut payload, p, &mut prev);
            }
            put_frame(&mut wal, &payload);
        }
        let mut payload = Vec::new();
        payload.push(KIND_PUNCT);
        put_u64(&mut payload, 3);
        put_u64(&mut payload, 2_000_000);
        put_frame(&mut wal, &payload);
        std::fs::write(dir.join(wal_name(0, 1)), &wal).expect("write wal");
        let commit = CommitState {
            position: 10,
            watermark: 2_000_000,
            closed_below: 0,
            rr: 1,
            tuples_in: 10,
            filtered: 0,
            late_drops: 0,
            hi: vec![3],
            producers: Vec::new(),
        };
        let mut ctl = Vec::new();
        let mut payload = Vec::new();
        commit.encode(&mut payload);
        put_frame(&mut ctl, &payload);
        std::fs::write(dir.join(ctl_name(1)), &ctl).expect("write ctl");
        let io: Arc<dyn IoBackend> = Arc::new(crate::io::StdFs);
        let rec = recover(&io, &dir, 1).expect("recover legacy store");
        assert_eq!(rec.truncated, 0, "legacy records must parse, not be cut");
        assert_eq!(rec.commit, commit);
        assert!(rec.resumed);
        assert_eq!(rec.replay[0].len(), 3);
        match &rec.replay[0][0] {
            ReplayMsg::Batch { seq, wm, pkts: got } => {
                assert_eq!((*seq, *wm), (1, 0), "implied watermark is 0");
                assert_eq!(got, &pkts);
            }
            other => panic!("bad replay head: {other:?}"),
        }
        match &rec.replay[0][2] {
            ReplayMsg::Punct { seq, wm } => assert_eq!((*seq, *wm), (3, 2_000_000)),
            other => panic!("bad replay tail: {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_names_roundtrip_and_sort() {
        assert_eq!(
            parse_wal_name(&wal_name(3, 1001)),
            Some((3, 1001)),
            "wal name"
        );
        assert_eq!(parse_ctl_name(&ctl_name(7)), Some(7));
        assert_eq!(parse_ckpt_name(&ckpt_name(2, 9)), Some((2, 9)));
        assert_eq!(parse_wal_name("MANIFEST"), None);
        assert_eq!(parse_wal_name("wal-x-1.seg"), None);
        // Zero-padded names sort lexicographically in numeric order.
        assert!(wal_name(0, 9) < wal_name(0, 10));
        assert!(ctl_name(99) < ctl_name(100));
    }
}
