//! The CPU-load model used to present measured per-tuple costs the way the
//! paper does.
//!
//! The paper plots *CPU load %* against offered stream rate on a fixed
//! machine: a query whose per-tuple cost is `c` nanoseconds saturates one
//! core at `10⁹/c` packets per second, and its load at offered rate `R` is
//! `R·c` (capped at 100%, beyond which GS drops tuples). We measure `c`
//! directly on this machine by timing a full engine run and translate to
//! the same curves; who saturates first — and by what factor — is a
//! machine-independent property of the algorithms.

/// CPU load (percent, capped at 100) for per-tuple cost `ns_per_tuple`
/// nanoseconds at an offered rate of `rate_pps` packets/second.
pub fn cpu_load_pct(rate_pps: f64, ns_per_tuple: f64) -> f64 {
    (rate_pps * ns_per_tuple / 1e9 * 100.0).min(100.0)
}

/// Fraction of tuples dropped at the offered rate: zero until the core
/// saturates, then `1 − capacity/rate`.
pub fn drop_fraction(rate_pps: f64, ns_per_tuple: f64) -> f64 {
    let load = rate_pps * ns_per_tuple / 1e9;
    if load <= 1.0 {
        0.0
    } else {
        1.0 - 1.0 / load
    }
}

/// One point of a load curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadPoint {
    /// Offered stream rate, packets per second.
    pub rate_pps: f64,
    /// Resulting CPU load, percent (≤ 100).
    pub cpu_pct: f64,
    /// Fraction of tuples dropped (> 0 only at 100% load).
    pub drop_frac: f64,
}

impl LoadPoint {
    /// Builds the load point for a measured per-tuple cost.
    pub fn from_cost(rate_pps: f64, ns_per_tuple: f64) -> Self {
        Self {
            rate_pps,
            cpu_pct: cpu_load_pct(rate_pps, ns_per_tuple),
            drop_frac: drop_fraction(rate_pps, ns_per_tuple),
        }
    }
}

/// Modeled capacity (tuples/second) of the sharded pipeline: the ingress
/// thread admits and routes at `10⁹/dispatch_ns`, and `n_shards` workers
/// aggregate concurrently at `n·10⁹/worker_ns`; the slower of the two
/// saturates first. Like [`cpu_load_pct`], this translates measured
/// per-tuple costs into a machine-independent property: on an
/// (n+1)-core machine the sharded engine's saturation rate moves out by
/// `min(worker_ns/dispatch_ns, n)` relative to single-threaded.
pub fn sharded_capacity_pps(dispatch_ns: f64, worker_ns: f64, n_shards: usize) -> f64 {
    assert!(dispatch_ns > 0.0 && worker_ns > 0.0 && n_shards > 0);
    (1e9 / dispatch_ns).min(n_shards as f64 * 1e9 / worker_ns)
}

/// Extends [`sharded_capacity_pps`] to the multi-producer ingress fabric:
/// `producers` ingress threads each sustain `10⁹ / ingress_ns` tuples/s of
/// route-and-scatter, and the shard workers cap the aggregate at
/// `n · 10⁹ / worker_ns` — the serial-dispatcher term of the paper's §VI
/// cost model becomes a scalable one. With `producers == 1` this is
/// exactly [`sharded_capacity_pps`].
pub fn fabric_capacity_pps(
    ingress_ns: f64,
    worker_ns: f64,
    n_shards: usize,
    producers: usize,
) -> f64 {
    assert!(ingress_ns > 0.0 && worker_ns > 0.0 && n_shards > 0 && producers > 0);
    (producers as f64 * 1e9 / ingress_ns).min(n_shards as f64 * 1e9 / worker_ns)
}

/// Sums per-shard execution counters into one
/// [`EngineStats`](crate::engine::EngineStats) — the view
/// of a sharded run as if it were one engine. Admission counters
/// (`tuples_in`, `filtered`, `late_drops`) add because each tuple is
/// admitted on exactly one shard; `lfta_evictions` adds across the
/// per-shard LFTAs. Note that `buckets_closed` adds *per-shard* closes: a
/// time bucket spanning k shards counts k times here — the combiner's own
/// count (see [`crate::shard::ShardedEngine::stats`]) reports distinct
/// buckets.
pub fn combine_shard_stats(shards: &[crate::engine::EngineStats]) -> crate::engine::EngineStats {
    let mut total = crate::engine::EngineStats::default();
    for s in shards {
        total.tuples_in += s.tuples_in;
        total.filtered += s.filtered;
        total.late_drops += s.late_drops;
        total.lfta_evictions += s.lfta_evictions;
        total.rows_out += s.rows_out;
        total.buckets_closed += s.buckets_closed;
    }
    total
}

/// Times a closure and reports nanoseconds per item for `items` processed.
pub fn measure_ns_per_item(items: u64, f: impl FnOnce()) -> f64 {
    assert!(items > 0);
    let start = std::time::Instant::now();
    f();
    start.elapsed().as_nanos() as f64 / items as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_is_linear_then_capped() {
        assert_eq!(cpu_load_pct(100_000.0, 1_000.0), 10.0); // 1 µs × 100k/s
        assert_eq!(cpu_load_pct(1_000_000.0, 1_000.0), 100.0);
        assert_eq!(cpu_load_pct(5_000_000.0, 1_000.0), 100.0);
    }

    #[test]
    fn drops_begin_exactly_at_saturation() {
        assert_eq!(drop_fraction(999_999.0, 1_000.0), 0.0);
        assert_eq!(drop_fraction(1_000_000.0, 1_000.0), 0.0);
        let d = drop_fraction(2_000_000.0, 1_000.0);
        assert!((d - 0.5).abs() < 1e-12);
    }

    #[test]
    fn load_point_bundles_both() {
        let p = LoadPoint::from_cost(400_000.0, 3_000.0);
        assert_eq!(p.cpu_pct, 100.0);
        assert!(p.drop_frac > 0.0);
        let q = LoadPoint::from_cost(100_000.0, 2_500.0);
        assert_eq!(q.cpu_pct, 25.0);
        assert_eq!(q.drop_frac, 0.0);
    }

    #[test]
    fn sharded_capacity_is_min_of_dispatch_and_workers() {
        // Aggregation 8× the dispatch cost: workers limit until 8 shards.
        assert_eq!(sharded_capacity_pps(100.0, 800.0, 1), 1.25e6);
        assert_eq!(sharded_capacity_pps(100.0, 800.0, 4), 5e6);
        // From 8 shards on, the ingress thread is the bottleneck.
        assert_eq!(sharded_capacity_pps(100.0, 800.0, 8), 1e7);
        assert_eq!(sharded_capacity_pps(100.0, 800.0, 16), 1e7);
    }

    #[test]
    fn combine_shard_stats_sums_all_counters() {
        use crate::engine::EngineStats;
        let a = EngineStats {
            tuples_in: 10,
            filtered: 1,
            late_drops: 2,
            lfta_evictions: 3,
            rows_out: 4,
            buckets_closed: 5,
        };
        let b = EngineStats {
            tuples_in: 20,
            ..EngineStats::default()
        };
        let total = combine_shard_stats(&[a, b]);
        assert_eq!(total.tuples_in, 30);
        assert_eq!(total.filtered, 1);
        assert_eq!(total.late_drops, 2);
        assert_eq!(total.lfta_evictions, 3);
        assert_eq!(total.rows_out, 4);
        assert_eq!(total.buckets_closed, 5);
    }

    #[test]
    fn measure_reports_positive_cost() {
        let ns = measure_ns_per_item(1000, || {
            let mut x = 0u64;
            for i in 0..1000u64 {
                x = x.wrapping_add(i * i);
            }
            std::hint::black_box(x);
        });
        assert!(ns > 0.0);
    }
}
