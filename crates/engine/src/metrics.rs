//! The CPU-load model used to present measured per-tuple costs the way the
//! paper does.
//!
//! The paper plots *CPU load %* against offered stream rate on a fixed
//! machine: a query whose per-tuple cost is `c` nanoseconds saturates one
//! core at `10⁹/c` packets per second, and its load at offered rate `R` is
//! `R·c` (capped at 100%, beyond which GS drops tuples). We measure `c`
//! directly on this machine by timing a full engine run and translate to
//! the same curves; who saturates first — and by what factor — is a
//! machine-independent property of the algorithms.

/// CPU load (percent, capped at 100) for per-tuple cost `ns_per_tuple`
/// nanoseconds at an offered rate of `rate_pps` packets/second.
pub fn cpu_load_pct(rate_pps: f64, ns_per_tuple: f64) -> f64 {
    (rate_pps * ns_per_tuple / 1e9 * 100.0).min(100.0)
}

/// Fraction of tuples dropped at the offered rate: zero until the core
/// saturates, then `1 − capacity/rate`.
pub fn drop_fraction(rate_pps: f64, ns_per_tuple: f64) -> f64 {
    let load = rate_pps * ns_per_tuple / 1e9;
    if load <= 1.0 {
        0.0
    } else {
        1.0 - 1.0 / load
    }
}

/// One point of a load curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadPoint {
    /// Offered stream rate, packets per second.
    pub rate_pps: f64,
    /// Resulting CPU load, percent (≤ 100).
    pub cpu_pct: f64,
    /// Fraction of tuples dropped (> 0 only at 100% load).
    pub drop_frac: f64,
}

impl LoadPoint {
    /// Builds the load point for a measured per-tuple cost.
    pub fn from_cost(rate_pps: f64, ns_per_tuple: f64) -> Self {
        Self {
            rate_pps,
            cpu_pct: cpu_load_pct(rate_pps, ns_per_tuple),
            drop_frac: drop_fraction(rate_pps, ns_per_tuple),
        }
    }
}

/// Times a closure and reports nanoseconds per item for `items` processed.
pub fn measure_ns_per_item(items: u64, f: impl FnOnce()) -> f64 {
    assert!(items > 0);
    let start = std::time::Instant::now();
    f();
    start.elapsed().as_nanos() as f64 / items as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_is_linear_then_capped() {
        assert_eq!(cpu_load_pct(100_000.0, 1_000.0), 10.0); // 1 µs × 100k/s
        assert_eq!(cpu_load_pct(1_000_000.0, 1_000.0), 100.0);
        assert_eq!(cpu_load_pct(5_000_000.0, 1_000.0), 100.0);
    }

    #[test]
    fn drops_begin_exactly_at_saturation() {
        assert_eq!(drop_fraction(999_999.0, 1_000.0), 0.0);
        assert_eq!(drop_fraction(1_000_000.0, 1_000.0), 0.0);
        let d = drop_fraction(2_000_000.0, 1_000.0);
        assert!((d - 0.5).abs() < 1e-12);
    }

    #[test]
    fn load_point_bundles_both() {
        let p = LoadPoint::from_cost(400_000.0, 3_000.0);
        assert_eq!(p.cpu_pct, 100.0);
        assert!(p.drop_frac > 0.0);
        let q = LoadPoint::from_cost(100_000.0, 2_500.0);
        assert_eq!(q.cpu_pct, 25.0);
        assert_eq!(q.drop_frac, 0.0);
    }

    #[test]
    fn measure_reports_positive_cost() {
        let ns = measure_ns_per_item(1000, || {
            let mut x = 0u64;
            for i in 0..1000u64 {
                x = x.wrapping_add(i * i);
            }
            std::hint::black_box(x);
        });
        assert!(ns > 0.0);
    }
}
