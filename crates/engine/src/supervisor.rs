//! Supervision primitives for the sharded engine: checkpoint slots and
//! restart policy.
//!
//! The design follows the classic supervisor pattern (bounded restarts
//! with exponential backoff, then graceful degradation) specialized to the
//! engine's determinism requirements. A shard worker periodically
//! serializes its whole [`crate::engine::Engine`] — forward decay makes
//! this cheap and *exact*, because summaries carry frozen numerators
//! `g(t_i − L)` that are plain numbers, not functions of the current time
//! (paper Section VI-B). Each shard retains the small tail of messages
//! since its last checkpoint: the dispatcher appends to that backlog, the
//! worker trims it as each checkpoint it publishes covers older entries.
//! On worker death the supervisor restores the engine from the slot and
//! replays the tail, which reproduces the worker's state byte-for-byte
//! (see [`crate::engine::Engine::checkpoint`]).
//!
//! Everything here is shared *after* the workers have spawned, which is
//! why the tunables are atomics: `ShardedEngine::try_new` starts the
//! worker threads, and the builder-style knobs (`checkpoint_every`) are
//! applied to the already-running config.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Take a checkpoint after at least this many tuples since the previous
/// one (default for [`crate::shard::ShardedEngine`]). Tuned on the
/// `recovery_overhead` bench: each shard retains a replay backlog
/// covering at most this many tuples, so the interval bounds both the
/// replay tail and the retained-batch working set — under 3% overhead on
/// the dispatch path for the Figure 2 count workload — while the
/// serialization and backlog trimming run on worker threads, where they
/// overlap dispatch whenever a spare core exists.
pub const DEFAULT_CHECKPOINT_EVERY: u64 = 32_768;

/// Give up on a shard after this many worker restarts (default).
pub const DEFAULT_MAX_RESTARTS: u32 = 3;

/// Base delay of the exponential respawn backoff: attempt k waits
/// `BACKOFF_BASE << k`.
pub const BACKOFF_BASE: Duration = Duration::from_millis(10);

/// Supervision tunables, shared with already-running workers.
#[derive(Debug)]
pub struct SupervisorConfig {
    /// Tuples between checkpoints; `0` disables supervision entirely
    /// (workers never checkpoint, no backlog is retained, and a dead
    /// worker is a hard error — the pre-supervision behavior).
    pub checkpoint_every: AtomicU64,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            checkpoint_every: AtomicU64::new(DEFAULT_CHECKPOINT_EVERY),
        }
    }
}

/// One shard's checkpoint slot: the latest engine snapshot, stamped with
/// the sequence number of the last message folded into it.
///
/// Written by the worker (engine bytes + seq), which also trims the
/// replay backlog against the `seq` it just published; the dispatcher
/// reads the slot only on recovery (full restore) and at degrade-time
/// salvage. Single writer, so a plain mutex on the bytes is uncontended
/// in the steady state.
#[derive(Debug, Default)]
pub struct CheckpointSlot {
    /// Sequence number of the last message whose effects are inside
    /// `bytes`. Backlog entries with `seq <= this` are covered and may
    /// be discarded.
    seq: AtomicU64,
    bytes: Mutex<Option<Vec<u8>>>,
    /// Set once the engine reports its aggregator cannot checkpoint
    /// (e.g. samplers). The dispatcher then stops retaining backlog: on
    /// death the shard degrades immediately instead of replaying.
    unsupported: AtomicBool,
}

impl CheckpointSlot {
    /// Sequence number of the stored snapshot (`0` = none yet).
    pub fn seq(&self) -> u64 {
        self.seq.load(Ordering::Acquire)
    }

    /// Stores a snapshot, handing back the one it displaces so the worker
    /// can reuse its allocation for the next serialization (`None` on the
    /// first store). `seq` must be the sequence number of the last
    /// message applied before serializing.
    pub fn store(&self, seq: u64, bytes: Vec<u8>) -> Option<Vec<u8>> {
        let prev = self
            .bytes
            .lock()
            .expect("checkpoint slot poisoned")
            .replace(bytes);
        self.seq.store(seq, Ordering::Release);
        prev
    }

    /// The stored snapshot, if any, with its sequence number.
    pub fn load(&self) -> Option<(u64, Vec<u8>)> {
        let bytes = self
            .bytes
            .lock()
            .expect("checkpoint slot poisoned")
            .clone()?;
        Some((self.seq(), bytes))
    }

    /// Marks the slot as permanently unable to checkpoint.
    pub fn mark_unsupported(&self) {
        self.unsupported.store(true, Ordering::Release);
    }

    /// Whether checkpointing was found to be unsupported for this query.
    pub fn unsupported(&self) -> bool {
        self.unsupported.load(Ordering::Acquire)
    }
}

/// Backoff before respawn attempt `attempt` (0-based): `BACKOFF_BASE << attempt`,
/// saturating.
pub fn backoff(attempt: u32) -> Duration {
    BACKOFF_BASE.saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
}

/// One worker *incarnation*'s progress lease — the stuck-shard watchdog's
/// ground truth.
///
/// The worker heartbeats ([`beat`](WorkerLease::beat) /
/// [`record_progress`](WorkerLease::record_progress)) with relaxed stores
/// on its message loop; the dispatcher reads the lease only when a shard's
/// ring has been full past the send deadline, and declares the worker
/// *wedged* when the heartbeat is older than the configured lease. Safe
/// Rust cannot kill a thread, so a wedged worker is **retired**
/// ([`retire`](WorkerLease::retire)) and abandoned: a fresh incarnation
/// with a fresh lease takes over through the normal checkpoint + backlog
/// replay path, while the old thread — if it ever unwedges — observes
/// [`retired`](WorkerLease::retired) on its next loop iteration and exits
/// without side effects (no checkpoint stores, no result sends, no
/// telemetry decrements: its replayed messages are the live copies now).
#[derive(Debug)]
pub struct WorkerLease {
    /// When this incarnation was installed; heartbeats are milliseconds
    /// since then.
    born: std::time::Instant,
    /// Milliseconds since `born` at the worker's last sign of life.
    beat_ms: AtomicU64,
    /// Highest sequence number the worker has fully applied.
    consumed_seq: AtomicU64,
    /// Set by the watchdog when it abandons this incarnation.
    retired: AtomicBool,
}

impl Default for WorkerLease {
    fn default() -> Self {
        Self {
            born: std::time::Instant::now(),
            beat_ms: AtomicU64::new(0),
            consumed_seq: AtomicU64::new(0),
            retired: AtomicBool::new(false),
        }
    }
}

impl WorkerLease {
    /// Worker-side: records a sign of life (one relaxed store).
    pub fn beat(&self) {
        self.beat_ms
            .store(self.born.elapsed().as_millis() as u64, Ordering::Relaxed);
    }

    /// Worker-side: records a sign of life plus the last fully-applied
    /// sequence number.
    pub fn record_progress(&self, seq: u64) {
        self.consumed_seq.store(seq, Ordering::Relaxed);
        self.beat();
    }

    /// The last sequence number the worker reported applying.
    pub fn consumed_seq(&self) -> u64 {
        self.consumed_seq.load(Ordering::Relaxed)
    }

    /// How long ago the last heartbeat was (time since birth, if the
    /// worker never beat at all).
    pub fn stale_for(&self) -> Duration {
        self.born
            .elapsed()
            .saturating_sub(Duration::from_millis(self.beat_ms.load(Ordering::Relaxed)))
    }

    /// Whether the heartbeat is older than `lease`.
    pub fn is_stale(&self, lease: Duration) -> bool {
        self.stale_for() > lease
    }

    /// Watchdog-side: abandons this incarnation. Sticky.
    pub fn retire(&self) {
        self.retired.store(true, Ordering::Release);
    }

    /// Whether this incarnation has been abandoned. Checked once per
    /// message by the worker loop (one relaxed-ish load — cheap).
    pub fn retired(&self) -> bool {
        self.retired.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_roundtrip() {
        let slot = CheckpointSlot::default();
        assert_eq!(slot.seq(), 0);
        assert!(slot.load().is_none());
        slot.store(7, vec![1, 2, 3]);
        assert_eq!(slot.load(), Some((7, vec![1, 2, 3])));
        slot.store(9, vec![4]);
        assert_eq!(slot.load(), Some((9, vec![4])));
    }

    #[test]
    fn unsupported_is_sticky() {
        let slot = CheckpointSlot::default();
        assert!(!slot.unsupported());
        slot.mark_unsupported();
        assert!(slot.unsupported());
    }

    #[test]
    fn backoff_grows_and_saturates() {
        assert_eq!(backoff(0), Duration::from_millis(10));
        assert_eq!(backoff(1), Duration::from_millis(20));
        assert_eq!(backoff(2), Duration::from_millis(40));
        assert!(backoff(40) >= backoff(3));
    }

    #[test]
    fn lease_tracks_heartbeats_and_progress() {
        let lease = WorkerLease::default();
        assert_eq!(lease.consumed_seq(), 0);
        lease.record_progress(41);
        assert_eq!(lease.consumed_seq(), 41);
        // A fresh beat resets staleness to (sub-millisecond) zero.
        lease.beat();
        assert!(!lease.is_stale(Duration::from_millis(50)));
        std::thread::sleep(Duration::from_millis(30));
        assert!(lease.is_stale(Duration::from_millis(5)));
        assert!(lease.stale_for() >= Duration::from_millis(20));
    }

    #[test]
    fn lease_retirement_is_sticky() {
        let lease = WorkerLease::default();
        assert!(!lease.retired());
        lease.retire();
        assert!(lease.retired());
        lease.beat(); // a zombie heartbeat does not un-retire
        assert!(lease.retired());
    }
}
