//! Pluggable filesystem backend for the durability layer.
//!
//! Everything [`crate::durability`] does to disk goes through the
//! [`IoBackend`] trait: a handful of primitive operations (append-only
//! files, whole-file reads, rename, directory listing and sync) chosen so
//! the WAL/checkpoint/manifest protocol can be expressed — and sabotaged —
//! precisely. Two implementations ship:
//!
//! * [`StdFs`] — the real thing, a thin veneer over `std::fs`;
//! * [`FaultyFs`] — wraps any backend and fires one scheduled
//!   [`DiskFault`] at the Nth matching operation: short writes, fsync
//!   errors, silent byte corruption, rename failure, or a persistently
//!   full disk. Deterministic (a plain operation counter, no clocks or
//!   RNG), so the fault-matrix CI job replays bit-identical failures.
//!
//! The split keeps `durability.rs` honest: it cannot reach around the
//! trait to `std::fs`, so every code path the recovery tests exercise is
//! the same one production runs.

use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::fault::{DiskFault, DiskFaultKind};

/// An open file handle supporting appends and durability barriers.
pub trait IoFile: Send {
    /// Appends the whole buffer at the current end of file.
    fn append(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Flushes file contents (and metadata) to stable storage.
    fn sync(&mut self) -> io::Result<()>;
}

/// The filesystem surface the durability layer is written against.
pub trait IoBackend: Send + Sync + fmt::Debug {
    /// Creates `dir` and any missing parents.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// Opens `path` for appending, creating it if absent.
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn IoFile>>;
    /// Creates (or truncates) `path` for writing.
    fn create(&self, path: &Path) -> io::Result<Box<dyn IoFile>>;
    /// Reads the entire file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Atomically renames `from` to `to` (same directory).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Deletes a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Lists the file names (not paths) directly inside `dir`.
    fn list(&self, dir: &Path) -> io::Result<Vec<String>>;
    /// Truncates `path` to exactly `len` bytes.
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()>;
    /// Syncs the directory itself, making renames/creates in it durable.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
}

/// The real filesystem.
#[derive(Debug, Default, Clone, Copy)]
pub struct StdFs;

struct StdFile(fs::File);

impl IoFile for StdFile {
    fn append(&mut self, buf: &[u8]) -> io::Result<()> {
        self.0.write_all(buf)
    }
    fn sync(&mut self) -> io::Result<()> {
        self.0.sync_all()
    }
}

impl IoBackend for StdFs {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)
    }
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn IoFile>> {
        let f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(Box::new(StdFile(f)))
    }
    fn create(&self, path: &Path) -> io::Result<Box<dyn IoFile>> {
        Ok(Box::new(StdFile(fs::File::create(path)?)))
    }
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }
    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            if let Ok(name) = entry.file_name().into_string() {
                names.push(name);
            }
        }
        Ok(names)
    }
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let f = fs::OpenOptions::new().write(true).open(path)?;
        f.set_len(len)
    }
    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        // Directory fsync is a Unix idiom; opening a directory read-only
        // and syncing it is portable enough for the platforms CI runs on.
        fs::File::open(dir)?.sync_all()
    }
}

/// Shared trigger state: one counter per sabotaged operation type, so
/// "the 3rd fsync" means the same fsync no matter how operations of other
/// types interleave.
#[derive(Debug)]
struct FaultShared {
    fault: DiskFault,
    writes: AtomicU64,
    fsyncs: AtomicU64,
    renames: AtomicU64,
}

impl FaultShared {
    /// Counts one matching operation; true when this is the trigger.
    /// `Enospc` stays triggered for every later operation (a disk does
    /// not un-fill itself).
    fn fire(&self, counter: &AtomicU64) -> bool {
        let n = counter.fetch_add(1, Ordering::Relaxed) + 1;
        match self.fault.kind {
            DiskFaultKind::Enospc => n >= self.fault.at_op,
            _ => n == self.fault.at_op,
        }
    }
}

fn injected(kind: io::ErrorKind, what: &str) -> io::Error {
    io::Error::new(kind, format!("injected fault: {what}"))
}

/// A fault-injecting wrapper around any [`IoBackend`].
///
/// Exactly one [`DiskFault`] is scheduled per wrapper; operation counting
/// is deterministic, and every counter is shared across all files the
/// wrapper opens (the WAL writer is single-threaded, so the operation
/// order is reproducible).
#[derive(Debug)]
pub struct FaultyFs {
    inner: Arc<dyn IoBackend>,
    shared: Arc<FaultShared>,
}

impl FaultyFs {
    /// Wraps `inner`, scheduling `fault`.
    pub fn new(inner: Arc<dyn IoBackend>, fault: DiskFault) -> Self {
        Self {
            inner,
            shared: Arc::new(FaultShared {
                fault,
                writes: AtomicU64::new(0),
                fsyncs: AtomicU64::new(0),
                renames: AtomicU64::new(0),
            }),
        }
    }
}

struct FaultyFile {
    inner: Box<dyn IoFile>,
    shared: Arc<FaultShared>,
}

impl IoFile for FaultyFile {
    fn append(&mut self, buf: &[u8]) -> io::Result<()> {
        match self.shared.fault.kind {
            DiskFaultKind::ShortWrite if self.shared.fire(&self.shared.writes) => {
                // Persist a prefix, then fail: the on-disk state is a torn
                // record, exactly what recovery's truncation rule handles.
                self.inner.append(&buf[..buf.len() / 2])?;
                Err(injected(io::ErrorKind::Interrupted, "short write"))
            }
            DiskFaultKind::CorruptByte if self.shared.fire(&self.shared.writes) => {
                // Flip one bit mid-buffer and report success — the lie is
                // only caught by CRC verification on read-back.
                let mut copy = buf.to_vec();
                let mid = copy.len() / 2;
                if let Some(b) = copy.get_mut(mid) {
                    *b ^= 0x01;
                }
                self.inner.append(&copy)
            }
            DiskFaultKind::Enospc if self.shared.fire(&self.shared.writes) => Err(injected(
                io::ErrorKind::StorageFull,
                "no space left on device",
            )),
            _ => self.inner.append(buf),
        }
    }

    fn sync(&mut self) -> io::Result<()> {
        if self.shared.fault.kind == DiskFaultKind::FsyncError
            && self.shared.fire(&self.shared.fsyncs)
        {
            return Err(injected(io::ErrorKind::Other, "fsync failed"));
        }
        self.inner.sync()
    }
}

impl IoBackend for FaultyFs {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        self.inner.create_dir_all(dir)
    }
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn IoFile>> {
        Ok(Box::new(FaultyFile {
            inner: self.inner.open_append(path)?,
            shared: Arc::clone(&self.shared),
        }))
    }
    fn create(&self, path: &Path) -> io::Result<Box<dyn IoFile>> {
        Ok(Box::new(FaultyFile {
            inner: self.inner.create(path)?,
            shared: Arc::clone(&self.shared),
        }))
    }
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.inner.read(path)
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        if self.shared.fault.kind == DiskFaultKind::RenameFail
            && self.shared.fire(&self.shared.renames)
        {
            return Err(injected(io::ErrorKind::Other, "rename failed"));
        }
        self.inner.rename(from, to)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.inner.remove_file(path)
    }
    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        self.inner.list(dir)
    }
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        self.inner.truncate(path, len)
    }
    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        if self.shared.fault.kind == DiskFaultKind::FsyncError
            && self.shared.fire(&self.shared.fsyncs)
        {
            return Err(injected(io::ErrorKind::Other, "directory fsync failed"));
        }
        self.inner.sync_dir(dir)
    }
}

/// Joins a store directory and a file name. Free function so callers can
/// build paths uniformly without touching `PathBuf` plumbing.
pub(crate) fn join(dir: &Path, name: &str) -> PathBuf {
    dir.join(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fd_io_test_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn std_fs_roundtrip() {
        let dir = tmpdir("roundtrip");
        let io = StdFs;
        let path = dir.join("a.log");
        let mut f = io.open_append(&path).unwrap();
        f.append(b"hello ").unwrap();
        f.append(b"world").unwrap();
        f.sync().unwrap();
        drop(f);
        assert_eq!(io.read(&path).unwrap(), b"hello world");
        io.truncate(&path, 5).unwrap();
        assert_eq!(io.read(&path).unwrap(), b"hello");
        io.rename(&path, &dir.join("b.log")).unwrap();
        let mut names = io.list(&dir).unwrap();
        names.sort();
        assert_eq!(names, vec!["b.log"]);
        io.remove_file(&dir.join("b.log")).unwrap();
        io.sync_dir(&dir).unwrap();
        assert!(io.list(&dir).unwrap().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn short_write_persists_a_prefix_then_errors() {
        let dir = tmpdir("short");
        let io = FaultyFs::new(
            Arc::new(StdFs),
            DiskFault {
                kind: DiskFaultKind::ShortWrite,
                at_op: 2,
            },
        );
        let path = dir.join("w.log");
        let mut f = io.open_append(&path).unwrap();
        f.append(b"aaaa").unwrap();
        let err = f.append(b"bbbb").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        assert_eq!(StdFs.read(&path).unwrap(), b"aaaabb");
        // One-shot: later writes succeed again.
        f.append(b"cc").unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_byte_lies_about_success() {
        let dir = tmpdir("corrupt");
        let io = FaultyFs::new(
            Arc::new(StdFs),
            DiskFault {
                kind: DiskFaultKind::CorruptByte,
                at_op: 1,
            },
        );
        let path = dir.join("w.log");
        let mut f = io.open_append(&path).unwrap();
        f.append(&[0u8; 8]).unwrap();
        let on_disk = StdFs.read(&path).unwrap();
        assert_eq!(on_disk.len(), 8);
        assert_eq!(on_disk.iter().filter(|&&b| b != 0).count(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn enospc_is_persistent() {
        let dir = tmpdir("enospc");
        let io = FaultyFs::new(
            Arc::new(StdFs),
            DiskFault {
                kind: DiskFaultKind::Enospc,
                at_op: 2,
            },
        );
        let mut f = io.open_append(&dir.join("w.log")).unwrap();
        f.append(b"x").unwrap();
        assert!(f.append(b"x").is_err());
        assert!(f.append(b"x").is_err());
        assert!(f.append(b"x").is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fsync_and_rename_faults_fire_once() {
        let dir = tmpdir("oneshot");
        let io = FaultyFs::new(
            Arc::new(StdFs),
            DiskFault {
                kind: DiskFaultKind::FsyncError,
                at_op: 1,
            },
        );
        let mut f = io.open_append(&dir.join("w.log")).unwrap();
        assert!(f.sync().is_err());
        assert!(f.sync().is_ok());

        let io = FaultyFs::new(
            Arc::new(StdFs),
            DiskFault {
                kind: DiskFaultKind::RenameFail,
                at_op: 1,
            },
        );
        let from = dir.join("w.log");
        let to = dir.join("v.log");
        assert!(io.rename(&from, &to).is_err());
        assert!(io.rename(&from, &to).is_ok());
        let _ = fs::remove_dir_all(&dir);
    }
}
