//! Stream drivers: shared scans over multiple queries, and rate-controlled
//! replay that makes the paper's "tuple dropping" behaviour observable.
//!
//! GS runs many continuous queries against one packet feed; [`QuerySet`]
//! reproduces that shared-scan arrangement. The paper's experiments vary
//! the *offered* stream rate and report CPU load and drops once the system
//! saturates; [`RateDriver`] replays a recorded trace at a chosen offered
//! rate against the real measured processing speed, dropping tuples when
//! the ingress buffer overflows — the executable version of the
//! [`crate::metrics`] load model.

use std::time::Instant;

use crate::engine::{Engine, EngineStats, Row, StreamEvent};
use crate::processor::StreamProcessor;
use crate::shard::ShardedEngine;
use crate::tuple::{Micros, Packet};
use crate::udaf::Query;

/// Interleaves periodic heartbeats (punctuations) into a time-ordered
/// packet stream: one [`StreamEvent::Punctuation`] every `interval` of
/// stream time, plus a final one past the last packet — GS's mechanism for
/// keeping time buckets flowing through idle stretches.
pub fn with_heartbeats(
    packets: impl IntoIterator<Item = Packet>,
    interval: Micros,
) -> Vec<StreamEvent> {
    assert!(interval > 0);
    let mut out = Vec::new();
    let mut next_beat = interval;
    let mut max_ts = 0;
    for p in packets {
        while p.ts >= next_beat {
            out.push(StreamEvent::Punctuation(next_beat));
            next_beat += interval;
        }
        max_ts = max_ts.max(p.ts);
        out.push(StreamEvent::Data(p));
    }
    out.push(StreamEvent::Punctuation(max_ts.max(next_beat)));
    out
}

/// Several continuous queries sharing one scan of the stream.
pub struct QuerySet {
    engines: Vec<Engine>,
}

impl QuerySet {
    /// Instantiates all queries.
    pub fn new(queries: Vec<Query>) -> Self {
        assert!(!queries.is_empty(), "need at least one query");
        Self {
            engines: queries.into_iter().map(Engine::new).collect(),
        }
    }

    /// Offers one tuple to every query.
    pub fn process(&mut self, pkt: &Packet) {
        for e in &mut self.engines {
            e.process(pkt);
        }
    }

    /// Ends the stream; returns `(query name, rows)` per query.
    pub fn finish(&mut self) -> Vec<(String, Vec<Row>)> {
        self.engines
            .iter_mut()
            .map(|e| (e.query_name().to_string(), e.finish()))
            .collect()
    }

    /// Per-query execution counters.
    pub fn stats(&self) -> Vec<(String, EngineStats)> {
        self.engines
            .iter()
            .map(|e| (e.query_name().to_string(), e.stats()))
            .collect()
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.engines.len()
    }

    /// True if the set is empty (never: construction requires ≥ 1).
    pub fn is_empty(&self) -> bool {
        self.engines.is_empty()
    }

    /// Total live aggregation state across all queries.
    pub fn space_bytes(&self) -> usize {
        self.engines.iter().map(Engine::space_bytes).sum()
    }
}

/// Outcome of a rate-controlled replay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayStats {
    /// Tuples offered by the trace.
    pub offered: u64,
    /// Tuples actually processed.
    pub processed: u64,
    /// Tuples dropped at the (simulated) ingress buffer.
    pub dropped: u64,
    /// Wall-clock processing time, seconds.
    pub busy_secs: f64,
    /// CPU load: busy time over stream (offered) time, capped at 100.
    pub cpu_load_pct: f64,
}

impl ReplayStats {
    /// Fraction of offered tuples dropped.
    pub fn drop_fraction(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.dropped as f64 / self.offered as f64
        }
    }
}

/// Replays a trace at a fixed offered rate against the engine's real
/// processing speed.
///
/// Tuples arrive on a virtual clock at `rate_pps`; the engine services them
/// as fast as the host CPU allows (measured per batch). When the engine
/// falls behind by more than `buffer` tuples, the surplus is dropped — the
/// behaviour the paper reports when backward-decay machinery saturates a
/// core.
#[derive(Debug, Clone, Copy)]
pub struct RateDriver {
    /// Offered rate, tuples per second.
    pub rate_pps: f64,
    /// Ingress buffer capacity in tuples.
    pub buffer: u64,
    /// Tuples per timing batch (the measurement granularity).
    pub batch: usize,
}

impl RateDriver {
    /// Creates a driver with a 64k-tuple ingress buffer and 1024-tuple
    /// timing batches.
    pub fn new(rate_pps: f64) -> Self {
        assert!(rate_pps > 0.0);
        Self {
            rate_pps,
            buffer: 65_536,
            batch: 1024,
        }
    }

    /// Replays `packets` through any [`StreamProcessor`] at the offered
    /// rate.
    ///
    /// For the single-threaded [`Engine`] the service time per batch is the
    /// full aggregation cost. For a [`ShardedEngine`] it is the
    /// *dispatcher's* time — admission plus routing — because the workers
    /// aggregate concurrently on other cores. That is exactly what the
    /// sharded architecture buys: the ingress thread only has to keep up
    /// with admission, so the saturation rate (and the drop onset) moves
    /// out by roughly the per-tuple aggregation cost over the per-tuple
    /// dispatch cost.
    ///
    /// # Errors
    /// Propagates the first processing error (e.g.
    /// [`fd_core::Error::WorkerLost`] from an unsupervised sharded engine).
    pub fn try_replay<P: StreamProcessor>(
        &self,
        engine: &mut P,
        packets: &[Packet],
    ) -> Result<ReplayStats, fd_core::Error> {
        self.replay_with(packets, |p| engine.process(p))
    }

    /// Panicking convenience over [`RateDriver::try_replay`].
    pub fn replay<P: StreamProcessor>(&self, engine: &mut P, packets: &[Packet]) -> ReplayStats {
        self.try_replay(engine, packets)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Replays `packets` through a sharded engine at the offered rate.
    ///
    /// Kept for source compatibility; identical to calling
    /// [`RateDriver::replay`] with the sharded engine.
    pub fn replay_sharded(&self, engine: &mut ShardedEngine, packets: &[Packet]) -> ReplayStats {
        self.replay(engine, packets)
    }

    fn replay_with(
        &self,
        packets: &[Packet],
        mut process: impl FnMut(&Packet) -> Result<(), fd_core::Error>,
    ) -> Result<ReplayStats, fd_core::Error> {
        let mut processed = 0u64;
        let mut dropped = 0u64;
        let mut free_at = 0.0f64; // virtual clock: when the engine is next idle
        let mut busy_secs = 0.0f64; // accumulated service time
        let mut i = 0usize;
        while i < packets.len() {
            let end = (i + self.batch).min(packets.len());
            // Arrival time of the first tuple of the batch on the offered
            // clock.
            let arrival = i as f64 / self.rate_pps;
            // Backlog in tuples when this batch arrives: how much offered
            // data is waiting because the engine is still busy.
            let lag_secs = (free_at - arrival).max(0.0);
            let backlog = lag_secs * self.rate_pps;
            if backlog > self.buffer as f64 {
                // Buffer overflow: this batch is lost at the NIC.
                dropped += (end - i) as u64;
                i = end;
                continue;
            }
            let t0 = Instant::now();
            for p in &packets[i..end] {
                process(p)?;
            }
            let service = t0.elapsed().as_secs_f64();
            // The engine starts serving when the batch has arrived and the
            // engine is free.
            free_at = free_at.max(arrival) + service;
            busy_secs += service;
            processed += (end - i) as u64;
            i = end;
        }
        let offered = packets.len() as u64;
        let stream_secs = offered as f64 / self.rate_pps;
        Ok(ReplayStats {
            offered,
            processed,
            dropped,
            busy_secs,
            cpu_load_pct: (busy_secs / stream_secs * 100.0).min(100.0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregators::{count_factory, fwd_sum_factory};
    use crate::tuple::{Proto, MICROS_PER_SEC};
    use fd_core::decay::Monomial;

    fn pkt(i: u64) -> Packet {
        Packet {
            ts: i * MICROS_PER_SEC / 1000,
            src_ip: i as u32,
            dst_ip: (i % 64) as u32,
            src_port: 1,
            dst_port: 80,
            len: 100,
            proto: Proto::Tcp,
        }
    }

    fn count_query(name: &str) -> Query {
        Query::builder(name)
            .group_by(|p| p.dst_host())
            .bucket_secs(60)
            .aggregate(count_factory())
            .build()
    }

    #[test]
    fn query_set_runs_all_queries_over_one_scan() {
        let mut qs = QuerySet::new(vec![
            count_query("counts"),
            Query::builder("decayed")
                .group_by(|p| p.dst_host())
                .bucket_secs(60)
                .aggregate(fwd_sum_factory(Monomial::quadratic(), |p| p.len as f64))
                .build(),
        ]);
        for i in 0..1000 {
            qs.process(&pkt(i));
        }
        let results = qs.finish();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].0, "counts");
        assert_eq!(results[0].1.len(), 64);
        assert_eq!(results[1].1.len(), 64);
        for (_, stats) in qs.stats() {
            assert_eq!(stats.tuples_in, 1000);
        }
    }

    #[test]
    fn heartbeats_keep_buckets_flowing_through_idle_gaps() {
        // Data in minute 0, then silence, then data in minute 10. Without
        // heartbeats, minute 0 only closes when minute-10 data arrives;
        // with them, it closes on schedule.
        let mut packets: Vec<Packet> = (0..100).map(pkt).collect(); // t < 0.1 s
        packets.push(Packet {
            ts: 600 * MICROS_PER_SEC,
            ..pkt(0)
        });
        let events = with_heartbeats(packets.clone(), 60 * MICROS_PER_SEC);
        // Punctuations present and interleaved in order.
        let beats = events
            .iter()
            .filter(|e| matches!(e, StreamEvent::Punctuation(_)))
            .count();
        assert!(beats >= 10, "expected ~10 heartbeats, got {beats}");

        let mut e = Engine::new(count_query("hb"));
        let mut first_row_after = None;
        for (i, ev) in events.iter().enumerate() {
            e.process_event(ev);
            if first_row_after.is_none() && e.stats().rows_out > 0 {
                first_row_after = Some(i);
            }
        }
        // The first bucket closed on a punctuation (index ≤ data count + a
        // couple of beats), long before the minute-10 packet (last event-2).
        let idx = first_row_after.expect("bucket must close");
        assert!(
            idx < events.len() - 2,
            "bucket only closed at stream end ({idx})"
        );
        e.finish();
    }

    #[test]
    fn replay_at_low_rate_drops_nothing() {
        let mut e = Engine::new(count_query("slow"));
        let packets: Vec<Packet> = (0..20_000).map(pkt).collect();
        // 10 tuples/s offered: any engine keeps up.
        let stats = RateDriver {
            rate_pps: 1e4,
            buffer: 1024,
            batch: 256,
        }
        .replay(&mut e, &packets);
        assert_eq!(stats.dropped, 0);
        assert_eq!(stats.processed, 20_000);
        assert!(stats.cpu_load_pct < 100.0);
    }

    #[test]
    fn replay_at_impossible_rate_drops_tuples() {
        let mut e = Engine::new(count_query("fast"));
        let packets: Vec<Packet> = (0..200_000).map(pkt).collect();
        // 10¹² tuples/s offered: no engine keeps up; the buffer must
        // overflow.
        let stats = RateDriver {
            rate_pps: 1e12,
            buffer: 4_096,
            batch: 1024,
        }
        .replay(&mut e, &packets);
        assert!(stats.dropped > 0, "expected drops at an impossible rate");
        assert_eq!(stats.processed + stats.dropped, stats.offered);
        assert_eq!(stats.cpu_load_pct, 100.0);
    }

    #[test]
    fn replay_stats_accounting() {
        let s = ReplayStats {
            offered: 100,
            processed: 75,
            dropped: 25,
            busy_secs: 1.0,
            cpu_load_pct: 100.0,
        };
        assert!((s.drop_fraction() - 0.25).abs() < 1e-12);
        let empty = ReplayStats {
            offered: 0,
            processed: 0,
            dropped: 0,
            busy_secs: 0.0,
            cpu_load_pct: 0.0,
        };
        assert_eq!(empty.drop_fraction(), 0.0);
    }
}
