//! The overload control plane: bounded-lag backpressure, decay-aware load
//! shedding, and the vocabulary shared by the dispatcher, the ingress
//! fabric, the supervisor's stuck-shard watchdog and graceful drain.
//!
//! A slow or wedged shard worker must not head-of-line-block the whole
//! ingress plane. The controller bounds how long any hot-path send may
//! park ([`crate::spsc::RingSender::send_deadline`]) and, when a shard
//! stays over its lag budget past the deadline, consults a [`ShedPolicy`]:
//!
//! * [`ShedPolicy::Block`] — lossless: keep waiting in deadline-sized
//!   slices (each slice re-checks the watchdog, so a wedged worker is
//!   detected and respawned instead of being waited on forever).
//! * [`ShedPolicy::DropOldest`] — displace the *oldest* queued batch.
//!   Under forward decay the oldest batch is exactly the one whose
//!   weights `g(t_i − L)` are smallest, so dropping it loses the least
//!   decayed mass per tuple shed.
//! * [`ShedPolicy::Subsample`] — the paper's own escape hatch: thin
//!   admitted tuples with inclusion probability proportional to their
//!   forward-decay weight and attach a `1/p` Horvitz–Thompson scale to
//!   each survivor ([`Subsampler`]), so decayed counts, sums and averages
//!   remain *unbiased* estimates of the unshed stream. Sheds are counted
//!   per shard and per producer in telemetry — never silent.
//!
//! ## Unbiasedness
//!
//! Every tuple `i` gets an inclusion probability `p_i ∈ [P_MIN, 1]` and,
//! if it survives, contributes its update multiplied by `1/p_i`. For any
//! aggregate that is linear in per-tuple contributions `x_i` (decayed
//! count: `x_i = g(t_i − L)`; decayed sum: `x_i = g(t_i − L)·v_i`),
//! `E[Σ_survivors x_i / p_i] = Σ_i p_i · x_i / p_i = Σ_i x_i` — the exact
//! unshed total, for *any* choice of `p_i > 0`. Choosing `p_i ∝ w_i`
//! (the tuple's forward-decay weight) minimizes the variance contribution
//! `x_i² (1 − p_i) / p_i` of the heavy, recent tuples: the items decay
//! will soon make irrelevant are the ones shed first. The decayed average
//! is a ratio of two such estimators and stays consistent. Non-linear
//! summaries (quantiles, heavy hitters, samplers) admit no such scale
//! column, so `Subsample` is refused at configuration time for queries
//! whose aggregate lacks [`crate::udaf::Aggregator::supports_scaled_updates`].

use std::str::FromStr;
use std::sync::Arc;
use std::time::Duration;

use fd_core::decay::AnyDecay;
use fd_core::ForwardDecay;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::tuple::{Micros, Packet};

/// Inclusion probabilities are clamped below at this value: no tuple is
/// ever shed with near-certainty, which caps the per-survivor scale at
/// `1 / P_MIN` and with it the Horvitz–Thompson variance contribution of
/// any single tuple.
pub const P_MIN: f64 = 0.05;

/// Default bound on any single hot-path ring wait. Under
/// [`ShedPolicy::Block`] this is only the *re-check cadence* (the wait
/// loops, losing nothing); under the lossy policies it is how long a
/// producer is willing to stall before shedding.
pub const DEFAULT_SEND_DEADLINE: Duration = Duration::from_millis(100);

/// Default watchdog lease: a worker whose ring is full and whose last
/// heartbeat is older than this is declared wedged. Deliberately
/// conservative so deliberately-slow shards (tests inject multi-hundred-ms
/// `SlowShard` faults) are never reaped by default.
pub const DEFAULT_LEASE: Duration = Duration::from_secs(30);

/// What the dispatcher does with a batch once its shard has stayed over
/// the lag budget past the send deadline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ShedPolicy {
    /// Never shed: block in deadline-sized slices until the ring drains
    /// (re-checking the stuck-shard watchdog between slices). Lossless;
    /// the default, and the only policy a durable store accepts.
    Block,
    /// Displace the oldest queued batch to admit the new one — the batch
    /// with the least decayed mass per tuple. Bounded stall, bounded loss.
    DropOldest,
    /// Thin tuples to roughly `target_rate` of the offered stream,
    /// weighted by forward-decay weight, with Horvitz–Thompson
    /// reweighting of survivors. `target_rate` must lie in `(0, 1]`.
    Subsample {
        /// Fraction of offered tuples to admit under sustained overload.
        target_rate: f64,
    },
}

impl ShedPolicy {
    /// Whether this policy can lose data. A durable store refuses lossy
    /// policies: its contract is that acknowledged data survives, and a
    /// WAL record whose batch was later displaced would resurrect tuples
    /// the telemetry reported shed.
    pub fn is_lossy(&self) -> bool {
        !matches!(self, ShedPolicy::Block)
    }
}

impl FromStr for ShedPolicy {
    type Err = fd_core::Error;

    /// Parses the CLI spelling: `block`, `drop-oldest`, or
    /// `subsample:RATE` with `RATE` in `(0, 1]`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "block" => Ok(ShedPolicy::Block),
            "drop-oldest" => Ok(ShedPolicy::DropOldest),
            _ => {
                let rate = s
                    .strip_prefix("subsample:")
                    .and_then(|r| r.parse::<f64>().ok())
                    .ok_or(fd_core::Error::InvalidParameter {
                        name: "shed",
                        value: f64::NAN,
                        requirement: "block | drop-oldest | subsample:RATE",
                    })?;
                if !(rate > 0.0 && rate <= 1.0) {
                    return Err(fd_core::Error::InvalidParameter {
                        name: "shed subsample rate",
                        value: rate,
                        requirement: "in (0, 1]",
                    });
                }
                Ok(ShedPolicy::Subsample { target_rate: rate })
            }
        }
    }
}

/// Overload-control tunables for a sharded engine.
#[derive(Debug, Clone)]
pub struct OverloadConfig {
    /// The shed policy consulted once a shard is over budget past the
    /// deadline.
    pub policy: ShedPolicy,
    /// Upper bound on any single hot-path ring wait.
    pub send_deadline: Duration,
    /// Per-shard lag budget in queued batches (in-flight epochs). A shard
    /// at or over this depth is considered lagging and, for
    /// [`ShedPolicy::Subsample`], has its incoming tuples thinned even
    /// before the ring fills. Clamped to the ring depth at configuration
    /// time (a budget beyond the ring can never be observed).
    pub lag_budget: usize,
    /// Watchdog lease: a worker holding a full ring with no heartbeat for
    /// this long is declared wedged and respawned.
    pub lease: Duration,
    /// The decay function weighting subsample inclusion probabilities —
    /// normally the query's own decay, so shedding and aggregation agree
    /// on which tuples matter least.
    pub decay: AnyDecay,
    /// Seed for the deterministic subsampling RNG.
    pub seed: u64,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        Self {
            policy: ShedPolicy::Block,
            send_deadline: DEFAULT_SEND_DEADLINE,
            lag_budget: usize::MAX,
            lease: DEFAULT_LEASE,
            decay: AnyDecay::from_str("none").expect("'none' always parses"),
            seed: 0x6f76_6c64,
        }
    }
}

/// What [`crate::shard::ShardedEngine::drain`] accomplished before its
/// deadline: the shutdown report `fdql` prints and tests assert on.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DrainReport {
    /// Tuples shed by the overload controller over the engine's lifetime
    /// (thinned by `Subsample` or lost in displaced batches).
    pub shed_tuples: u64,
    /// Whole batches displaced by `DropOldest`.
    pub shed_batches: u64,
    /// Wedged workers the watchdog respawned.
    pub wedged_respawns: u64,
    /// Batches that were still queued (or stuck in a wedged worker) when
    /// the drain deadline expired — data that never reached its engine.
    pub unflushed_epochs: u64,
    /// Ring depth per shard at the moment the drain gave up (all zeros on
    /// a clean drain).
    pub per_shard_lag: Vec<u64>,
    /// Whether the deadline expired before every ring emptied.
    pub deadline_expired: bool,
}

impl DrainReport {
    /// A report with nothing outstanding.
    pub fn clean() -> Self {
        Self::default()
    }

    /// Whether data was lost: either the drain left epochs unflushed, or
    /// the controller shed tuples along the way. Under
    /// [`ShedPolicy::Block`] any loss is a hard failure (`fdql` exits
    /// nonzero); under the lossy policies sheds are the accepted cost.
    pub fn data_lost(&self) -> bool {
        self.unflushed_epochs > 0 || self.shed_tuples > 0
    }
}

/// The decay-aware thinning stage: stateful (RNG) and owned by whichever
/// thread stages batches for a shard (the coordinator dispatcher, or one
/// ingress handle per producer — never shared).
#[derive(Debug)]
pub struct Subsampler {
    decay: AnyDecay,
    bucket_micros: Micros,
    target_rate: f64,
    rng: SmallRng,
}

impl Subsampler {
    /// Creates a thinning stage targeting `target_rate` admission under
    /// the given decay, with per-tuple landmarks at multiples of
    /// `bucket_micros` (the engine's own landmark rule: bucket start).
    pub fn new(decay: AnyDecay, bucket_micros: Micros, target_rate: f64, seed: u64) -> Self {
        assert!(bucket_micros > 0, "bucket width must be positive");
        assert!(
            target_rate > 0.0 && target_rate <= 1.0,
            "target rate must lie in (0, 1]"
        );
        Self {
            decay,
            bucket_micros,
            target_rate,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The forward-decay weight of a tuple at reference time `tau`:
    /// `g(t_i − L_i) / g(τ − L_i)` with `L_i` the tuple's bucket start —
    /// exactly the weight the aggregation layer will assign it.
    fn weight(&self, ts: Micros, tau: Micros) -> f64 {
        let landmark = (ts / self.bucket_micros) * self.bucket_micros;
        let num = self.decay.g((ts - landmark) as f64 / 1e6);
        let den = self.decay.g(tau.saturating_sub(landmark) as f64 / 1e6);
        if den > 0.0 && num.is_finite() && den.is_finite() {
            (num / den).clamp(0.0, 1.0)
        } else {
            1.0
        }
    }

    /// Thins `batch` in place, writing one Horvitz–Thompson scale per
    /// *survivor* into `scales` (cleared first; `scales[i]` pairs with the
    /// retained `batch[i]`). Returns the number of tuples shed.
    ///
    /// Inclusion probabilities are `p_i = clamp(r · w_i / w̄, P_MIN, 1)`
    /// where `w_i` is the tuple's forward-decay weight at the batch
    /// maximum timestamp, `w̄` the batch mean weight and `r` the target
    /// rate — so the *expected* admitted fraction is ≈ `r`, skewed toward
    /// the tuples forward decay weighs heaviest. When every survivor
    /// keeps `p = 1` (a batch under no pressure) `scales` stays all-ones.
    pub fn thin(&mut self, batch: &mut Vec<Packet>, scales: &mut Vec<f64>) -> u64 {
        scales.clear();
        if batch.is_empty() {
            return 0;
        }
        let tau = batch.iter().map(|p| p.ts).max().expect("non-empty");
        let mean_w = batch.iter().map(|p| self.weight(p.ts, tau)).sum::<f64>() / batch.len() as f64;
        let norm = if mean_w > 0.0 { mean_w } else { 1.0 };
        let before = batch.len();
        let mut kept = 0usize;
        for i in 0..before {
            let p_i = (self.target_rate * self.weight(batch[i].ts, tau) / norm).clamp(P_MIN, 1.0);
            let keep = p_i >= 1.0 || self.rng.gen::<f64>() < p_i;
            if keep {
                batch.swap(kept, i);
                scales.push(1.0 / p_i);
                kept += 1;
            }
        }
        batch.truncate(kept);
        (before - kept) as u64
    }
}

/// The per-tuple scale column attached to a thinned batch: `None` means
/// "all ones" (the unshed fast path pays nothing), `Some` pairs
/// element-wise with the batch. Shared `Arc` so the supervision backlog
/// and the in-flight message reference one allocation.
pub type ScaleColumn = Option<Arc<Vec<f64>>>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Proto;

    fn pkt(ts: Micros) -> Packet {
        Packet {
            ts,
            src_ip: 1,
            dst_ip: 2,
            src_port: 3,
            dst_port: 4,
            len: 100,
            proto: Proto::Tcp,
        }
    }

    #[test]
    fn shed_policy_parses() {
        assert_eq!("block".parse::<ShedPolicy>().unwrap(), ShedPolicy::Block);
        assert_eq!(
            "drop-oldest".parse::<ShedPolicy>().unwrap(),
            ShedPolicy::DropOldest
        );
        assert_eq!(
            "subsample:0.25".parse::<ShedPolicy>().unwrap(),
            ShedPolicy::Subsample { target_rate: 0.25 }
        );
        for bad in ["", "drop", "subsample", "subsample:0", "subsample:1.5"] {
            assert!(bad.parse::<ShedPolicy>().is_err(), "spec {bad:?}");
        }
        assert!(!ShedPolicy::Block.is_lossy());
        assert!(ShedPolicy::DropOldest.is_lossy());
        assert!(ShedPolicy::Subsample { target_rate: 0.5 }.is_lossy());
    }

    #[test]
    fn subsampler_hits_the_target_rate_and_scales_are_inverse_probabilities() {
        let mut s = Subsampler::new(AnyDecay::from_str("none").unwrap(), 1_000_000, 0.5, 0xfeed);
        let mut shed = 0u64;
        let mut kept = 0usize;
        let mut offered = 0usize;
        let mut scales = Vec::new();
        for round in 0..200 {
            let mut batch: Vec<Packet> = (0..100).map(|i| pkt(round * 7_000 + i * 13)).collect();
            offered += batch.len();
            shed += s.thin(&mut batch, &mut scales);
            assert_eq!(scales.len(), batch.len());
            // No decay → uniform weights → every p_i == target_rate.
            for &w in &scales {
                assert!((w - 2.0).abs() < 1e-12, "scale {w}");
            }
            kept += batch.len();
        }
        assert_eq!(kept + shed as usize, offered);
        let rate = kept as f64 / offered as f64;
        assert!((rate - 0.5).abs() < 0.03, "admitted fraction {rate}");
    }

    #[test]
    fn subsampler_prefers_recent_tuples_under_decay() {
        // Exponential decay with a 2 s half-life-ish rate: tuples early in
        // the bucket carry tiny weights and should be shed far more often.
        let mut s = Subsampler::new(
            AnyDecay::from_str("exp:1.0").unwrap(),
            60_000_000,
            0.5,
            0xdead,
        );
        let mut old_kept = 0usize;
        let mut new_kept = 0usize;
        let mut scales = Vec::new();
        for round in 0..300 {
            // Half the batch sits 10 s behind the freshest tuples.
            let mut batch: Vec<Packet> = (0..20)
                .map(|i| pkt(1_000_000 + round * 17 + i * 3))
                .chain((0..20).map(|i| pkt(11_000_000 + round * 17 + i * 3)))
                .collect();
            s.thin(&mut batch, &mut scales);
            old_kept += batch.iter().filter(|p| p.ts < 10_000_000).count();
            new_kept += batch.iter().filter(|p| p.ts >= 10_000_000).count();
        }
        assert!(
            new_kept > old_kept * 3,
            "recent {new_kept} vs old {old_kept}"
        );
    }

    #[test]
    fn horvitz_thompson_estimate_is_unbiased_within_tolerance() {
        // Decayed-count estimator: Σ 1/p_i over survivors must track the
        // offered count. 60k tuples, quadratic decay, 30% target.
        let mut s = Subsampler::new(
            AnyDecay::from_str("poly:2").unwrap(),
            1_000_000,
            0.3,
            0x5eed,
        );
        let mut estimate = 0.0;
        let mut offered = 0usize;
        let mut scales = Vec::new();
        for round in 0..600 {
            let mut batch: Vec<Packet> = (0..100).map(|i| pkt(round * 997 + i * 11)).collect();
            offered += batch.len();
            s.thin(&mut batch, &mut scales);
            estimate += scales.iter().sum::<f64>();
        }
        let rel = (estimate - offered as f64).abs() / offered as f64;
        assert!(rel < 0.02, "HT estimate off by {:.2}%", rel * 100.0);
    }

    #[test]
    fn thin_is_deterministic_for_a_seed() {
        let run = |seed| {
            let mut s =
                Subsampler::new(AnyDecay::from_str("poly:2").unwrap(), 1_000_000, 0.4, seed);
            let mut batch: Vec<Packet> = (0..500).map(|i| pkt(i * 3_001)).collect();
            let mut scales = Vec::new();
            s.thin(&mut batch, &mut scales);
            (batch.iter().map(|p| p.ts).collect::<Vec<_>>(), scales)
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).0, run(43).0, "different seeds thin differently");
    }

    #[test]
    fn drain_report_loss_rules() {
        assert!(!DrainReport::clean().data_lost());
        let mut r = DrainReport::clean();
        r.shed_tuples = 1;
        assert!(r.data_lost());
        let mut r = DrainReport::clean();
        r.unflushed_epochs = 2;
        assert!(r.data_lost());
    }
}
