//! The aggregation abstraction (GS's UDAF hook) and the query model.
//!
//! GS lets arbitrary C/C++ code run as a *user defined aggregate function*
//! over the tuples of a group; the paper implements its weighted
//! SpaceSaving, samplers and exponential-histogram baselines exactly this
//! way. [`Aggregator`] is the Rust equivalent: per-group state with
//! `update` / `merge` / `emit`, plus a size probe for the paper's
//! space-per-group measurements.
//!
//! A [`Query`] mirrors the GSQL queries of Section VIII: an optional
//! selection, a group-by key function, a time-bucket duration (`group by
//! time/60 as tb`), and one aggregate.

use std::any::Any;
use std::fmt;
use std::sync::Arc;

use crate::tuple::{Micros, Packet, MICROS_PER_SEC};

/// A single reported item with an associated value (a heavy hitter and its
/// count, a sampled key, a quantile, …).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ItemValue {
    /// The item (group-internal key: an IP, a port pair, a sampled value…).
    pub item: u64,
    /// Its associated value (estimated count, weight, …).
    pub value: f64,
}

/// The value a group's aggregator emits when its time bucket closes.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum AggValue {
    /// A scalar (count, sum, average, …).
    Float(f64),
    /// A list of items with values (heavy hitters, samples, quantiles).
    Items(Vec<ItemValue>),
    /// Several aggregates computed over the same group (the GSQL
    /// `select count(*), sum(len), …` shape) — see
    /// [`crate::aggregators::multi_factory`].
    Multi(Vec<AggValue>),
}

impl AggValue {
    /// The scalar value, if this is a `Float`.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            AggValue::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The item list, if this is an `Items`.
    pub fn as_items(&self) -> Option<&[ItemValue]> {
        match self {
            AggValue::Items(v) => Some(v.as_slice()),
            _ => None,
        }
    }

    /// The component values, if this is a `Multi`.
    pub fn as_multi(&self) -> Option<&[AggValue]> {
        match self {
            AggValue::Multi(v) => Some(v.as_slice()),
            _ => None,
        }
    }
}

impl fmt::Display for AggValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggValue::Float(x) => write!(f, "{x:.4}"),
            AggValue::Items(items) => {
                write!(f, "[")?;
                for (i, iv) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}:{:.3}", iv.item, iv.value)?;
                }
                write!(f, "]")
            }
            AggValue::Multi(parts) => {
                write!(f, "(")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// Per-group aggregation state — the UDAF interface.
///
/// `update` receives every tuple of the group; `merge_boxed` combines a
/// partial aggregate produced at the low level (LFTA) into this high-level
/// state; `emit` produces the group's output row when the bucket closes,
/// given the query time in seconds (the bucket end).
pub trait Aggregator: Any + Send {
    /// Folds one tuple into the state.
    fn update(&mut self, pkt: &Packet);

    /// Whether [`update_scaled`](Aggregator::update_scaled) honors non-unit
    /// Horvitz–Thompson scales. Linear decayed aggregates (forward-decayed
    /// count / sum / average, undecayed sum) do; order statistics,
    /// sketches and samplers keep the default `false`. The overload
    /// controller refuses `ShedPolicy::Subsample` at configuration time
    /// for queries whose aggregate reports `false` here.
    fn supports_scaled_updates(&self) -> bool {
        false
    }

    /// Folds one tuple carrying a Horvitz–Thompson scale: a survivor of
    /// load shedding admitted with inclusion probability `p` arrives with
    /// `scale = 1 / p`, keeping linear aggregates unbiased. A scale of
    /// `1.0` must be exactly [`update`](Aggregator::update).
    ///
    /// The default delegates to `update` and debug-asserts the scale is
    /// unit (the config-time gate on
    /// [`supports_scaled_updates`](Aggregator::supports_scaled_updates)
    /// makes a non-unit scale reaching an unsupporting aggregate an
    /// engine bug, not a user error).
    fn update_scaled(&mut self, pkt: &Packet, scale: f64) {
        debug_assert!(
            scale == 1.0,
            "non-unit HT scale {scale} reached an aggregator without scaled-update support"
        );
        self.update(pkt);
    }

    /// Absorbs a partial aggregate of the *same concrete type*.
    ///
    /// # Panics
    /// Panics if `other` is a different aggregator type (an engine bug).
    fn merge_boxed(&mut self, other: Box<dyn Aggregator>);

    /// Produces the output value at query time `t` (seconds).
    fn emit(&self, t: f64) -> AggValue;

    /// Approximate state size in bytes (the paper's space-per-group
    /// metric).
    fn size_bytes(&self) -> usize;

    /// Upcast for the downcasting dance inside `merge_boxed`
    /// implementations.
    fn as_any_box(self: Box<Self>) -> Box<dyn Any>;

    /// Serializes this aggregator's state for checkpoint/recovery, or
    /// `None` when the aggregator has no serializable representation.
    ///
    /// Closures (value/item extractors, decay parameters) are *not*
    /// captured: [`AggregatorFactory::make`] recreates them, and
    /// [`restore`](Aggregator::restore) refills only the summary state.
    /// All in-repo adapters support checkpointing; the default declines,
    /// so a hand-rolled UDAF without it degrades gracefully (the sharded
    /// engine then cannot restore that shard and marks it degraded on
    /// failure instead).
    fn checkpoint(&self) -> Option<Vec<u8>> {
        None
    }

    /// Appends the [`checkpoint`](Aggregator::checkpoint) bytes to `out`
    /// instead of allocating a fresh `Vec` per call. Engine checkpoints
    /// invoke this once per live group — tens of thousands of times per
    /// snapshot — so the in-repo adapters override the round-tripping
    /// default to write their state directly.
    fn checkpoint_into(&self, out: &mut Vec<u8>) -> Option<()> {
        let bytes = self.checkpoint()?;
        out.extend_from_slice(&bytes);
        Some(())
    }

    /// Restores state captured by [`checkpoint`](Aggregator::checkpoint)
    /// into a freshly [`make`](AggregatorFactory::make)d instance of the
    /// same factory and bucket.
    fn restore(&mut self, _bytes: &[u8]) -> Result<(), fd_core::checkpoint::CodecError> {
        Err(fd_core::checkpoint::CodecError::new(
            "aggregator does not support checkpointing",
        ))
    }
}

/// Appends one length-prefixed aggregator checkpoint to `out` — the
/// framing engine checkpoints use for each live group. Returns `None`
/// (leaving a zero length behind is fine; the caller aborts the whole
/// checkpoint) if the aggregator declines checkpointing.
pub(crate) fn write_agg(out: &mut Vec<u8>, agg: &dyn Aggregator) -> Option<()> {
    let len_pos = out.len();
    out.extend_from_slice(&0u64.to_le_bytes());
    agg.checkpoint_into(out)?;
    let len = (out.len() - len_pos - 8) as u64;
    out[len_pos..len_pos + 8].copy_from_slice(&len.to_le_bytes());
    Some(())
}

/// Creates fresh per-group aggregators. One factory per query.
pub trait AggregatorFactory: Send + Sync {
    /// Creates the aggregator for a group in the bucket starting at
    /// `bucket_start`. Decayed aggregates use it as their landmark, exactly
    /// as the paper's GSQL query uses `time % 60` (landmark = start of the
    /// minute).
    fn make(&self, bucket_start: Micros) -> Box<dyn Aggregator>;

    /// Display name (used in benchmark tables).
    fn name(&self) -> &str;

    /// Whether the engine may split this aggregate across the two-level
    /// architecture (partial aggregation at the LFTA). The paper's UDAFs
    /// "were written to run at the high-level only"; built-in count/sum and
    /// the forward-decayed count/sum are splittable.
    fn splittable(&self) -> bool;
}

/// A factory built from a closure — removes per-aggregator factory
/// boilerplate.
pub struct FnFactory {
    name: String,
    splittable: bool,
    make: Arc<dyn Fn(Micros) -> Box<dyn Aggregator> + Send + Sync>,
}

impl FnFactory {
    /// Wraps `make` as a factory.
    pub fn new(
        name: impl Into<String>,
        splittable: bool,
        make: impl Fn(Micros) -> Box<dyn Aggregator> + Send + Sync + 'static,
    ) -> Arc<Self> {
        Arc::new(Self {
            name: name.into(),
            splittable,
            make: Arc::new(make),
        })
    }
}

impl AggregatorFactory for FnFactory {
    fn make(&self, bucket_start: Micros) -> Box<dyn Aggregator> {
        (self.make)(bucket_start)
    }
    fn name(&self) -> &str {
        &self.name
    }
    fn splittable(&self) -> bool {
        self.splittable
    }
}

/// Tuple filter (the GSQL `from TCP` selection).
pub type Filter = Arc<dyn Fn(&Packet) -> bool + Send + Sync>;
/// Group-by key extractor (the GSQL `group by destIP, destPort`).
pub type KeyFn = Arc<dyn Fn(&Packet) -> u64 + Send + Sync>;

/// A continuous aggregate query: selection → group-by → time bucket →
/// aggregate.
#[derive(Clone)]
pub struct Query {
    /// Query name (for reports).
    pub name: String,
    /// Optional tuple selection.
    pub filter: Option<Filter>,
    /// Group-by key.
    pub group_by: KeyFn,
    /// Time-bucket width in microseconds (the `time/60` of GSQL).
    pub bucket_micros: Micros,
    /// Out-of-order slack: a bucket closes only once the watermark passes
    /// its end by this much.
    pub slack_micros: Micros,
    /// The aggregate to compute per group.
    pub aggregate: Arc<dyn AggregatorFactory>,
    /// Run the two-level (LFTA/HFTA) architecture. Figure 2(b) disables
    /// this.
    pub two_level: bool,
    /// Number of slots in the low-level direct-mapped table.
    pub lfta_slots: usize,
}

impl Query {
    /// Starts building a query.
    pub fn builder(name: impl Into<String>) -> QueryBuilder {
        QueryBuilder {
            name: name.into(),
            filter: None,
            group_by: None,
            bucket_micros: 60 * MICROS_PER_SEC,
            slack_micros: 0,
            aggregate: None,
            two_level: true,
            lfta_slots: 4096,
        }
    }
}

/// Builder for [`Query`].
pub struct QueryBuilder {
    name: String,
    filter: Option<Filter>,
    group_by: Option<KeyFn>,
    bucket_micros: Micros,
    slack_micros: Micros,
    aggregate: Option<Arc<dyn AggregatorFactory>>,
    two_level: bool,
    lfta_slots: usize,
}

impl QueryBuilder {
    /// Sets the tuple selection predicate.
    pub fn filter(mut self, f: impl Fn(&Packet) -> bool + Send + Sync + 'static) -> Self {
        self.filter = Some(Arc::new(f));
        self
    }

    /// Sets the group-by key function. Defaults to a single global group.
    pub fn group_by(mut self, f: impl Fn(&Packet) -> u64 + Send + Sync + 'static) -> Self {
        self.group_by = Some(Arc::new(f));
        self
    }

    /// Sets the time-bucket width in seconds (default 60, as in the
    /// paper's queries). A zero width is rejected at build time.
    pub fn bucket_secs(mut self, secs: u64) -> Self {
        self.bucket_micros = secs * MICROS_PER_SEC;
        self
    }

    /// Sets the out-of-order slack in seconds (default 0).
    pub fn slack_secs(mut self, secs: f64) -> Self {
        assert!(secs >= 0.0);
        self.slack_micros = (secs * MICROS_PER_SEC as f64) as Micros;
        self
    }

    /// Sets the aggregate factory. Required.
    pub fn aggregate(mut self, f: Arc<dyn AggregatorFactory>) -> Self {
        self.aggregate = Some(f);
        self
    }

    /// Enables/disables the two-level architecture (default on).
    pub fn two_level(mut self, on: bool) -> Self {
        self.two_level = on;
        self
    }

    /// Sets the LFTA table size (default 4096 slots). Zero slots are
    /// rejected at build time if two-level mode is on.
    pub fn lfta_slots(mut self, slots: usize) -> Self {
        self.lfta_slots = slots;
        self
    }

    /// Finishes the query.
    ///
    /// # Panics
    /// Panics if no aggregate was supplied.
    pub fn build(self) -> Query {
        self.try_build().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Finalizes the query, reporting what is missing or out of range
    /// instead of panicking: a query needs an aggregate, a positive bucket
    /// width, and (in two-level mode) at least one LFTA slot.
    pub fn try_build(self) -> Result<Query, fd_core::Error> {
        let aggregate = self.aggregate.ok_or(fd_core::Error::MissingComponent {
            builder: "Query",
            component: "aggregate",
        })?;
        if self.bucket_micros == 0 {
            return Err(fd_core::Error::InvalidParameter {
                name: "bucket_micros",
                value: 0.0,
                requirement: "at least one microsecond",
            });
        }
        if self.two_level && self.lfta_slots == 0 {
            return Err(fd_core::Error::InvalidParameter {
                name: "lfta_slots",
                value: 0.0,
                requirement: "at least one slot in two-level mode",
            });
        }
        Ok(Query {
            name: self.name,
            filter: self.filter,
            group_by: self.group_by.unwrap_or_else(|| Arc::new(|_| 0)),
            bucket_micros: self.bucket_micros,
            slack_micros: self.slack_micros,
            aggregate,
            two_level: self.two_level,
            lfta_slots: self.lfta_slots,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Proto;

    struct CountingAgg(u64);
    impl Aggregator for CountingAgg {
        fn update(&mut self, _pkt: &Packet) {
            self.0 += 1;
        }
        fn merge_boxed(&mut self, other: Box<dyn Aggregator>) {
            let o = other
                .as_any_box()
                .downcast::<CountingAgg>()
                .expect("type mismatch");
            self.0 += o.0;
        }
        fn emit(&self, _t: f64) -> AggValue {
            AggValue::Float(self.0 as f64)
        }
        fn size_bytes(&self) -> usize {
            8
        }
        fn as_any_box(self: Box<Self>) -> Box<dyn Any> {
            self
        }
    }

    fn pkt(ts: Micros) -> Packet {
        Packet {
            ts,
            src_ip: 1,
            dst_ip: 2,
            src_port: 3,
            dst_port: 4,
            len: 100,
            proto: Proto::Tcp,
        }
    }

    #[test]
    fn fn_factory_basics() {
        let f = FnFactory::new("count", true, |_| Box::new(CountingAgg(0)));
        assert_eq!(f.name(), "count");
        assert!(f.splittable());
        let mut a = f.make(0);
        a.update(&pkt(10));
        a.update(&pkt(20));
        assert_eq!(a.emit(1.0), AggValue::Float(2.0));
    }

    #[test]
    fn merge_boxed_downcasts() {
        let mut a: Box<dyn Aggregator> = Box::new(CountingAgg(3));
        let b: Box<dyn Aggregator> = Box::new(CountingAgg(4));
        a.merge_boxed(b);
        assert_eq!(a.emit(0.0), AggValue::Float(7.0));
    }

    #[test]
    fn query_builder_defaults() {
        let f = FnFactory::new("count", true, |_| Box::new(CountingAgg(0)));
        let q = Query::builder("q").aggregate(f).build();
        assert_eq!(q.bucket_micros, 60 * MICROS_PER_SEC);
        assert!(q.two_level);
        assert!(q.filter.is_none());
        assert_eq!((q.group_by)(&pkt(0)), 0);
    }

    #[test]
    #[should_panic(expected = "missing its aggregate")]
    fn query_requires_aggregate() {
        let _ = Query::builder("q").build();
    }

    #[test]
    fn try_build_reports_what_is_wrong() {
        assert!(matches!(
            Query::builder("q").try_build(),
            Err(fd_core::Error::MissingComponent { .. })
        ));
        let f = crate::aggregators::count_factory();
        assert!(Query::builder("q").aggregate(f.clone()).try_build().is_ok());
        assert!(Query::builder("q")
            .aggregate(f.clone())
            .bucket_secs(0)
            .try_build()
            .is_err());
        assert!(Query::builder("q")
            .aggregate(f)
            .lfta_slots(0)
            .try_build()
            .is_err());
    }

    #[test]
    fn agg_value_accessors_and_display() {
        let f = AggValue::Float(1.5);
        assert_eq!(f.as_float(), Some(1.5));
        assert!(f.as_items().is_none());
        let items = AggValue::Items(vec![ItemValue {
            item: 9,
            value: 2.0,
        }]);
        assert_eq!(items.as_items().unwrap().len(), 1);
        assert_eq!(format!("{items}"), "[9:2.000]");
    }
}
