//! Live, lock-free observability for the sharded engine.
//!
//! PR 1's [`EngineStats`](crate::engine::EngineStats) is six plain counters
//! populated only at `finish()` — useless for watching a running pipeline.
//! This module is the always-on counterpart: an [`EngineTelemetry`] registry
//! shared (via `Arc`) between the dispatcher, the N shard workers and the
//! combiner, updated with relaxed atomics on the hot path and readable from
//! any thread at any time.
//!
//! Three cost rules keep the instrumentation nearly free:
//!
//! 1. **Single-writer counters are `store`s, not `fetch_add`s.** Every
//!    admission counter has exactly one writer (the dispatcher) which
//!    already keeps the count in a local `EngineStats`; mirroring it is one
//!    relaxed store of a register, with no read-modify-write bus traffic.
//!    The same holds per shard for the worker-side gauges.
//! 2. **Read-modify-write only where two threads genuinely race** — the
//!    queue-depth gauge (incremented by the dispatcher, decremented by the
//!    worker) — and then only once per *batch*, not per tuple.
//! 3. **Histograms record per batch.** With the engine's 1024-tuple flush
//!    threshold that is three orders of magnitude fewer atomic ops than
//!    per-tuple timing.
//!
//! Snapshots ([`EngineTelemetry::snapshot`]) are `Relaxed` reads: cheap,
//! wait-free, and (like any multi-word sample of live counters) not a
//! single atomic cut of the whole registry — fine for monitoring, which is
//! what this is for. After `finish()` the counters are quiescent and agree
//! exactly with [`EngineStats`](crate::engine::EngineStats).
//!
//! [`MetricsSnapshot`] serializes to Prometheus text format
//! ([`MetricsSnapshot::to_prometheus`]) and JSON
//! ([`MetricsSnapshot::to_json`]); [`Reporter`] drives a background thread
//! that emits a snapshot every fixed interval.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Number of power-of-two buckets in a [`LogHistogram`]: bucket 0 holds the
/// value 0, bucket `i ≥ 1` holds values in `[2^(i−1), 2^i)`, and the last
/// bucket absorbs everything above `2^62`.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A lock-free histogram with power-of-two buckets, for latency-style
/// `u64` samples (nanoseconds, microseconds — any unit).
///
/// `record` is one relaxed `fetch_add` on the owning bucket; quantile
/// estimates come from a cumulative scan of a [`snapshot`], reporting the
/// (exclusive) upper bound of the bucket containing the target rank — an
/// estimate within 2× of the true sample value, which is the right
/// resolution for dashboards and regression gates.
///
/// [`snapshot`]: LogHistogram::snapshot
#[derive(Debug)]
pub struct LogHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// The bucket index for a value: 0 for 0, else `floor(log2(v)) + 1`,
    /// clamped to the last bucket.
    #[inline]
    fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// Records one sample. Wait-free; one relaxed `fetch_add`.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_of(v)].fetch_add(1, Relaxed);
    }

    /// A point-in-time copy of the bucket counts with precomputed
    /// p50/p95/p99 estimates.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = [0u64; HISTOGRAM_BUCKETS];
        for (c, b) in counts.iter_mut().zip(&self.buckets) {
            *c = b.load(Relaxed);
        }
        HistogramSnapshot::from_counts(counts)
    }
}

/// A point-in-time view of a [`LogHistogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total number of recorded samples.
    pub count: u64,
    /// Upper-bound estimate of the 50th percentile (0 when empty).
    pub p50: u64,
    /// Upper-bound estimate of the 95th percentile (0 when empty).
    pub p95: u64,
    /// Upper-bound estimate of the 99th percentile (0 when empty).
    pub p99: u64,
}

impl HistogramSnapshot {
    fn from_counts(counts: [u64; HISTOGRAM_BUCKETS]) -> Self {
        let count: u64 = counts.iter().sum();
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            // Rank of the q-th percentile sample, 1-based.
            let target = ((count as f64 * q).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (i, &c) in counts.iter().enumerate() {
                seen += c;
                if seen >= target {
                    // Exclusive upper bound of bucket i: 2^i (bucket 0 → 0).
                    return if i == 0 { 0 } else { 1u64 << i.min(63) };
                }
            }
            u64::MAX
        };
        Self {
            count,
            p50: quantile(0.50),
            p95: quantile(0.95),
            p99: quantile(0.99),
        }
    }
}

/// Live counters and gauges for one shard worker and its channel.
///
/// Writer discipline: `queue_depth` is the only two-writer field
/// (dispatcher increments, worker decrements — both per message);
/// `batches_sent` / `punctuations_sent` are dispatcher-only,
/// everything else is worker-only.
#[derive(Debug, Default)]
pub struct ShardTelemetry {
    /// Messages (batches + punctuations) currently queued to this shard.
    pub queue_depth: AtomicU64,
    /// Batches the dispatcher has sent to this shard.
    pub batches_sent: AtomicU64,
    /// Punctuations the dispatcher has sent to this shard.
    pub punctuations_sent: AtomicU64,
    /// Tuples the worker has applied to its engine.
    pub tuples_processed: AtomicU64,
    /// The highest watermark (µs) the worker has applied. The difference
    /// from [`EngineTelemetry::dispatcher_watermark`] is this shard's
    /// watermark lag.
    pub applied_watermark: AtomicU64,
    /// The worker engine's LFTA evictions so far.
    pub lfta_evictions: AtomicU64,
    /// The worker engine's current LFTA slot occupancy.
    pub lfta_occupancy: AtomicU64,
    /// Tuples the overload controller shed on this shard's ring
    /// (displaced batches under `DropOldest`, thinned-away tuples under
    /// `Subsample`). Sheds are never silent — every one is counted here
    /// and in [`EngineTelemetry::shed_tuples`].
    pub shed_tuples: AtomicU64,
    /// Per-batch worker processing time, nanoseconds.
    pub batch_ns: LogHistogram,
    /// Dispatch-to-apply latency per batch (send to fully processed),
    /// nanoseconds: queueing delay plus processing time.
    pub dispatch_lag_ns: LogHistogram,
}

/// Live counters and gauges for one ingress producer of a multi-producer
/// fabric run and its per-shard rings.
///
/// Writer discipline mirrors [`ShardTelemetry`]: each `ring_depth[s]`
/// gauge is the only two-writer field (the producer's handle increments
/// on send, the shard worker decrements on apply — both per epoch
/// message); everything else is written only by the owning ingress
/// handle, so the live mirrors are relaxed stores of handle-local counts.
#[derive(Debug, Default)]
pub struct ProducerTelemetry {
    /// Tuples offered to this producer's ingress handle.
    pub tuples_in: AtomicU64,
    /// Tuples this handle's selection filter rejected.
    pub filtered: AtomicU64,
    /// Tuples this handle dropped as late against its local boundary.
    pub late_drops: AtomicU64,
    /// The handle's local admission watermark, µs.
    pub watermark_us: AtomicU64,
    /// Epochs sealed (each ships one message per shard).
    pub epochs_sent: AtomicU64,
    /// This producer's batch-pool recycles (mirror of its
    /// [`BatchPool::reuses`](crate::spsc::BatchPool::reuses)).
    pub pool_reuses: AtomicU64,
    /// This producer's batch-pool cold allocations (mirror of its
    /// [`BatchPool::allocs`](crate::spsc::BatchPool::allocs)).
    pub pool_allocs: AtomicU64,
    /// Tuples the overload controller shed from this producer's epochs
    /// (whole-epoch drops under `DropOldest`, thinned-away tuples under
    /// `Subsample`).
    pub shed_tuples: AtomicU64,
    /// Messages in flight on this producer's ring to each shard.
    pub ring_depth: Vec<AtomicU64>,
}

impl ProducerTelemetry {
    fn new(n_shards: usize) -> Self {
        Self {
            ring_depth: (0..n_shards).map(|_| AtomicU64::new(0)).collect(),
            ..Self::default()
        }
    }
}

/// The shared metrics registry of a sharded engine run.
///
/// One instance lives behind an `Arc` held by the dispatcher
/// ([`ShardedEngine`](crate::shard::ShardedEngine)), every worker thread,
/// and anyone who grabbed
/// [`ShardedEngine::telemetry`](crate::shard::ShardedEngine::telemetry) —
/// which stays readable (and keeps the final counters) after the engine is
/// finished or dropped.
#[derive(Debug)]
pub struct EngineTelemetry {
    /// Tuples offered to the dispatcher (mirror of `EngineStats::tuples_in`).
    pub tuples_in: AtomicU64,
    /// Tuples rejected by the selection filter.
    pub filtered: AtomicU64,
    /// Tuples dropped for arriving after their bucket closed.
    pub late_drops: AtomicU64,
    /// The dispatcher's global watermark, µs.
    pub dispatcher_watermark: AtomicU64,
    /// Worker threads that terminated by panicking (see
    /// `Drop for ShardedEngine`).
    pub worker_panics: AtomicU64,
    /// Shard workers respawned by the supervisor after a death.
    pub restarts: AtomicU64,
    /// Engine checkpoints taken by shard workers.
    pub checkpoints: AtomicU64,
    /// Total worker **CPU time** spent serializing and publishing
    /// checkpoints, ns (thread clock where available, so time the worker
    /// spends preempted mid-serialization is not charged here). Dividing
    /// by `checkpoints` gives the mean per-checkpoint cost; on machines
    /// with fewer cores than shards this CPU also lands on wall-clock
    /// because serialization cannot overlap the dispatcher.
    pub checkpoint_ns: AtomicU64,
    /// Batches replayed to a respawned worker from the shard's backlog.
    pub replayed_batches: AtomicU64,
    /// Tuples inside replayed batches. Replays re-run through the worker,
    /// so per-shard `tuples_processed` counts them again; reconcile with
    /// `tuples_processed ≥ admitted − dropped` rather than equality when
    /// restarts occurred.
    pub replayed_tuples: AtomicU64,
    /// Shards given up on after exhausting their restart budget (their
    /// last checkpoint is still salvaged at `finish()`).
    pub degraded_shards: AtomicU64,
    /// Tuples dropped because their shard was degraded: the un-replayable
    /// backlog at degradation time plus everything routed there after.
    pub dropped_degraded: AtomicU64,
    /// Result rows emitted by the combiner (set at `finish()`).
    pub rows_out: AtomicU64,
    /// Distinct time buckets closed by the combiner (set at `finish()`).
    pub buckets_closed: AtomicU64,
    /// Bytes appended to WAL segments (framing included) by the durable
    /// store's writer thread.
    pub wal_bytes_written: AtomicU64,
    /// Torn or corrupt WAL/checkpoint records truncated during recovery
    /// (plus unreachable segments dropped along with them).
    pub wal_records_truncated: AtomicU64,
    /// Engine checkpoints persisted to disk (distinct from `checkpoints`,
    /// which counts in-memory slot publishes by workers).
    pub checkpoints_persisted: AtomicU64,
    /// WAL batch records replayed through the normal batch path during
    /// startup recovery (distinct from `replayed_batches`, which also
    /// counts in-process backlog replays after a worker crash).
    pub recovery_replayed_batches: AtomicU64,
    /// 1 when the durable store hit a persistent disk failure and the
    /// engine fell back to in-memory supervision only, else 0.
    pub durability_degraded: AtomicU64,
    /// Tuples shed by the overload controller across all shards and
    /// producers. Zero under `ShedPolicy::Block`.
    pub shed_tuples: AtomicU64,
    /// Whole batches/epochs shed by the overload controller.
    pub shed_batches: AtomicU64,
    /// Wedged (unresponsive but not dead) workers abandoned and respawned
    /// by the stuck-shard watchdog.
    pub wedged_respawns: AtomicU64,
    enabled: AtomicBool,
    shards: Vec<ShardTelemetry>,
    producers: Vec<ProducerTelemetry>,
}

impl EngineTelemetry {
    /// A zeroed registry for `n_shards` shards, with live updates enabled.
    pub fn new(n_shards: usize) -> Self {
        Self::with_producers(n_shards, 0)
    }

    /// A zeroed registry for `n_shards` shards and `n_producers` fabric
    /// ingress handles. `new(n)` is `with_producers(n, 0)`: a run without
    /// the multi-producer fabric has no producer section and renders
    /// exactly as before.
    pub fn with_producers(n_shards: usize, n_producers: usize) -> Self {
        Self {
            tuples_in: AtomicU64::new(0),
            filtered: AtomicU64::new(0),
            late_drops: AtomicU64::new(0),
            dispatcher_watermark: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
            restarts: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
            checkpoint_ns: AtomicU64::new(0),
            replayed_batches: AtomicU64::new(0),
            replayed_tuples: AtomicU64::new(0),
            degraded_shards: AtomicU64::new(0),
            dropped_degraded: AtomicU64::new(0),
            rows_out: AtomicU64::new(0),
            buckets_closed: AtomicU64::new(0),
            wal_bytes_written: AtomicU64::new(0),
            wal_records_truncated: AtomicU64::new(0),
            checkpoints_persisted: AtomicU64::new(0),
            recovery_replayed_batches: AtomicU64::new(0),
            durability_degraded: AtomicU64::new(0),
            shed_tuples: AtomicU64::new(0),
            shed_batches: AtomicU64::new(0),
            wedged_respawns: AtomicU64::new(0),
            enabled: AtomicBool::new(true),
            shards: (0..n_shards).map(|_| ShardTelemetry::default()).collect(),
            producers: (0..n_producers)
                .map(|_| ProducerTelemetry::new(n_shards))
                .collect(),
        }
    }

    /// Whether hot-path mirroring is on (see
    /// [`ShardedEngine::live_telemetry`](crate::shard::ShardedEngine::live_telemetry)).
    /// End-of-run counters are recorded either way.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Relaxed)
    }

    /// Turns hot-path mirroring on or off (the per-tuple admission mirrors
    /// and the per-batch worker gauges/histograms).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Relaxed);
    }

    /// Per-shard registries, indexed like the engine's shards.
    pub fn shards(&self) -> &[ShardTelemetry] {
        &self.shards
    }

    /// Per-producer registries, indexed like the fabric's ingress handles.
    /// Empty unless the registry was built with
    /// [`with_producers`](Self::with_producers).
    pub fn producers(&self) -> &[ProducerTelemetry] {
        &self.producers
    }

    /// A relaxed point-in-time sample of every counter, gauge and
    /// histogram. Callable from any thread, mid-stream or after the run.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let dispatcher_watermark_us = self.dispatcher_watermark.load(Relaxed);
        MetricsSnapshot {
            tuples_in: self.tuples_in.load(Relaxed),
            filtered: self.filtered.load(Relaxed),
            late_drops: self.late_drops.load(Relaxed),
            dispatcher_watermark_us,
            worker_panics: self.worker_panics.load(Relaxed),
            restarts: self.restarts.load(Relaxed),
            checkpoints: self.checkpoints.load(Relaxed),
            checkpoint_ns: self.checkpoint_ns.load(Relaxed),
            replayed_batches: self.replayed_batches.load(Relaxed),
            replayed_tuples: self.replayed_tuples.load(Relaxed),
            degraded_shards: self.degraded_shards.load(Relaxed),
            dropped_degraded: self.dropped_degraded.load(Relaxed),
            rows_out: self.rows_out.load(Relaxed),
            buckets_closed: self.buckets_closed.load(Relaxed),
            wal_bytes_written: self.wal_bytes_written.load(Relaxed),
            wal_records_truncated: self.wal_records_truncated.load(Relaxed),
            checkpoints_persisted: self.checkpoints_persisted.load(Relaxed),
            recovery_replayed_batches: self.recovery_replayed_batches.load(Relaxed),
            durability_degraded: self.durability_degraded.load(Relaxed),
            shed_tuples: self.shed_tuples.load(Relaxed),
            shed_batches: self.shed_batches.load(Relaxed),
            wedged_respawns: self.wedged_respawns.load(Relaxed),
            shards: self
                .shards
                .iter()
                .map(|s| {
                    let applied = s.applied_watermark.load(Relaxed);
                    ShardSnapshot {
                        queue_depth: s.queue_depth.load(Relaxed),
                        batches_sent: s.batches_sent.load(Relaxed),
                        punctuations_sent: s.punctuations_sent.load(Relaxed),
                        tuples_processed: s.tuples_processed.load(Relaxed),
                        applied_watermark_us: applied,
                        watermark_lag_us: dispatcher_watermark_us.saturating_sub(applied),
                        lfta_evictions: s.lfta_evictions.load(Relaxed),
                        lfta_occupancy: s.lfta_occupancy.load(Relaxed),
                        shed_tuples: s.shed_tuples.load(Relaxed),
                        batch_ns: s.batch_ns.snapshot(),
                        dispatch_lag_ns: s.dispatch_lag_ns.snapshot(),
                    }
                })
                .collect(),
            producers: self
                .producers
                .iter()
                .map(|p| ProducerSnapshot {
                    tuples_in: p.tuples_in.load(Relaxed),
                    filtered: p.filtered.load(Relaxed),
                    late_drops: p.late_drops.load(Relaxed),
                    watermark_us: p.watermark_us.load(Relaxed),
                    epochs_sent: p.epochs_sent.load(Relaxed),
                    pool_reuses: p.pool_reuses.load(Relaxed),
                    pool_allocs: p.pool_allocs.load(Relaxed),
                    shed_tuples: p.shed_tuples.load(Relaxed),
                    ring_depth: p.ring_depth.iter().map(|d| d.load(Relaxed)).collect(),
                })
                .collect(),
        }
    }
}

/// One ingress producer's slice of a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProducerSnapshot {
    /// Tuples offered to this producer's handle.
    pub tuples_in: u64,
    /// Tuples its selection filter rejected.
    pub filtered: u64,
    /// Late tuples it dropped at admission.
    pub late_drops: u64,
    /// Its local admission watermark, µs.
    pub watermark_us: u64,
    /// Epochs it has sealed (one message per shard each).
    pub epochs_sent: u64,
    /// Its batch-pool recycles.
    pub pool_reuses: u64,
    /// Its batch-pool cold allocations.
    pub pool_allocs: u64,
    /// Tuples the overload controller shed from its epochs.
    pub shed_tuples: u64,
    /// In-flight messages on its ring to each shard, indexed by shard.
    pub ring_depth: Vec<u64>,
}

/// One shard's slice of a [`MetricsSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSnapshot {
    /// Messages queued to the shard at sample time.
    pub queue_depth: u64,
    /// Batches sent to the shard so far.
    pub batches_sent: u64,
    /// Punctuations sent to the shard so far.
    pub punctuations_sent: u64,
    /// Tuples the worker has applied.
    pub tuples_processed: u64,
    /// Watermark the worker has applied, µs.
    pub applied_watermark_us: u64,
    /// `dispatcher_watermark − applied_watermark`, µs.
    pub watermark_lag_us: u64,
    /// LFTA evictions on this shard.
    pub lfta_evictions: u64,
    /// Current LFTA slot occupancy on this shard.
    pub lfta_occupancy: u64,
    /// Tuples the overload controller shed on this shard's ring.
    pub shed_tuples: u64,
    /// Per-batch processing-time histogram.
    pub batch_ns: HistogramSnapshot,
    /// Dispatch-to-apply latency histogram.
    pub dispatch_lag_ns: HistogramSnapshot,
}

/// A point-in-time sample of a whole engine's telemetry: plain data,
/// detached from the atomics, serializable to Prometheus text format and
/// JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Tuples offered to the dispatcher.
    pub tuples_in: u64,
    /// Tuples rejected by the selection filter.
    pub filtered: u64,
    /// Late tuples dropped at admission.
    pub late_drops: u64,
    /// Dispatcher watermark, µs.
    pub dispatcher_watermark_us: u64,
    /// Worker threads that have panicked.
    pub worker_panics: u64,
    /// Shard workers respawned by the supervisor.
    pub restarts: u64,
    /// Engine checkpoints taken by shard workers.
    pub checkpoints: u64,
    /// Total worker CPU time spent serializing and publishing
    /// checkpoints, ns.
    pub checkpoint_ns: u64,
    /// Batches replayed from the backlog after a restart.
    pub replayed_batches: u64,
    /// Tuples inside replayed batches (counted again in the owning shard's
    /// `tuples_processed`).
    pub replayed_tuples: u64,
    /// Shards degraded after exhausting their restart budget.
    pub degraded_shards: u64,
    /// Tuples dropped on degraded shards.
    pub dropped_degraded: u64,
    /// Rows emitted (0 until `finish()`).
    pub rows_out: u64,
    /// Distinct buckets closed (0 until `finish()`).
    pub buckets_closed: u64,
    /// Bytes appended to WAL segments, framing included.
    pub wal_bytes_written: u64,
    /// Torn/corrupt records truncated during recovery.
    pub wal_records_truncated: u64,
    /// Engine checkpoints persisted to disk.
    pub checkpoints_persisted: u64,
    /// WAL batch records replayed during startup recovery.
    pub recovery_replayed_batches: u64,
    /// 1 when durability degraded to in-memory supervision, else 0.
    pub durability_degraded: u64,
    /// Tuples shed by the overload controller.
    pub shed_tuples: u64,
    /// Whole batches/epochs shed by the overload controller.
    pub shed_batches: u64,
    /// Wedged workers respawned by the stuck-shard watchdog.
    pub wedged_respawns: u64,
    /// Per-shard samples; empty for a single-threaded run.
    pub shards: Vec<ShardSnapshot>,
    /// Per-producer samples; empty unless the multi-producer ingress
    /// fabric is active.
    pub producers: Vec<ProducerSnapshot>,
}

impl MetricsSnapshot {
    /// Wraps a single-threaded engine's final counters in snapshot form,
    /// so `--metrics` output has one shape regardless of `--shards`.
    pub fn from_engine_stats(stats: &crate::engine::EngineStats, watermark_us: u64) -> Self {
        Self {
            tuples_in: stats.tuples_in,
            filtered: stats.filtered,
            late_drops: stats.late_drops,
            dispatcher_watermark_us: watermark_us,
            worker_panics: 0,
            restarts: 0,
            checkpoints: 0,
            checkpoint_ns: 0,
            replayed_batches: 0,
            replayed_tuples: 0,
            degraded_shards: 0,
            dropped_degraded: 0,
            rows_out: stats.rows_out,
            buckets_closed: stats.buckets_closed,
            wal_bytes_written: 0,
            wal_records_truncated: 0,
            checkpoints_persisted: 0,
            recovery_replayed_batches: 0,
            durability_degraded: 0,
            shed_tuples: 0,
            shed_batches: 0,
            wedged_respawns: 0,
            shards: Vec::new(),
            producers: Vec::new(),
        }
    }

    /// Prometheus text exposition format. Metric names are prefixed `fd_`;
    /// per-shard series carry a `shard="i"` label and histogram quantiles a
    /// `quantile` label, e.g.:
    ///
    /// ```text
    /// # TYPE fd_tuples_in counter
    /// fd_tuples_in 100000
    /// # TYPE fd_shard_queue_depth gauge
    /// fd_shard_queue_depth{shard="0"} 2
    /// fd_worker_batch_ns{shard="0",quantile="0.5"} 1048576
    /// ```
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut scalar = |name: &str, kind: &str, v: u64| {
            let _ = writeln!(out, "# TYPE {name} {kind}");
            let _ = writeln!(out, "{name} {v}");
        };
        scalar("fd_tuples_in", "counter", self.tuples_in);
        scalar("fd_filtered", "counter", self.filtered);
        scalar("fd_late_drops", "counter", self.late_drops);
        scalar("fd_rows_out", "counter", self.rows_out);
        scalar("fd_buckets_closed", "counter", self.buckets_closed);
        scalar("fd_worker_panics", "counter", self.worker_panics);
        scalar("fd_restarts", "counter", self.restarts);
        scalar("fd_checkpoints", "counter", self.checkpoints);
        scalar("fd_checkpoint_ns_total", "counter", self.checkpoint_ns);
        scalar("fd_replayed_batches", "counter", self.replayed_batches);
        scalar("fd_replayed_tuples", "counter", self.replayed_tuples);
        scalar("fd_degraded_shards", "gauge", self.degraded_shards);
        scalar("fd_dropped_degraded", "counter", self.dropped_degraded);
        scalar("fd_wal_bytes_written", "counter", self.wal_bytes_written);
        scalar(
            "fd_wal_records_truncated",
            "counter",
            self.wal_records_truncated,
        );
        scalar(
            "fd_checkpoints_persisted",
            "counter",
            self.checkpoints_persisted,
        );
        scalar(
            "fd_recovery_replayed_batches",
            "counter",
            self.recovery_replayed_batches,
        );
        scalar("fd_durability_degraded", "gauge", self.durability_degraded);
        scalar("fd_shed_tuples", "counter", self.shed_tuples);
        scalar("fd_shed_batches", "counter", self.shed_batches);
        scalar("fd_wedged_respawns", "counter", self.wedged_respawns);
        scalar(
            "fd_dispatcher_watermark_us",
            "gauge",
            self.dispatcher_watermark_us,
        );
        if self.shards.is_empty() {
            return out;
        }
        let mut per_shard = |name: &str, kind: &str, get: &dyn Fn(&ShardSnapshot) -> u64| {
            let _ = writeln!(out, "# TYPE {name} {kind}");
            for (i, s) in self.shards.iter().enumerate() {
                let _ = writeln!(out, "{name}{{shard=\"{i}\"}} {}", get(s));
            }
        };
        per_shard("fd_shard_queue_depth", "gauge", &|s| s.queue_depth);
        per_shard("fd_shard_batches_sent", "counter", &|s| s.batches_sent);
        per_shard("fd_shard_punctuations_sent", "counter", &|s| {
            s.punctuations_sent
        });
        per_shard("fd_shard_tuples_processed", "counter", &|s| {
            s.tuples_processed
        });
        per_shard("fd_shard_applied_watermark_us", "gauge", &|s| {
            s.applied_watermark_us
        });
        per_shard("fd_shard_watermark_lag_us", "gauge", &|s| {
            s.watermark_lag_us
        });
        per_shard("fd_shard_lfta_evictions", "counter", &|s| s.lfta_evictions);
        per_shard("fd_shard_lfta_occupancy", "gauge", &|s| s.lfta_occupancy);
        per_shard("fd_shard_shed_tuples", "counter", &|s| s.shed_tuples);
        let mut histogram = |name: &str, get: &dyn Fn(&ShardSnapshot) -> HistogramSnapshot| {
            let _ = writeln!(out, "# TYPE {name} summary");
            for (i, s) in self.shards.iter().enumerate() {
                let h = get(s);
                for (q, v) in [(0.5, h.p50), (0.95, h.p95), (0.99, h.p99)] {
                    let _ = writeln!(out, "{name}{{shard=\"{i}\",quantile=\"{q}\"}} {v}");
                }
                let _ = writeln!(out, "{name}_count{{shard=\"{i}\"}} {}", h.count);
            }
        };
        histogram("fd_worker_batch_ns", &|s| s.batch_ns);
        histogram("fd_dispatch_lag_ns", &|s| s.dispatch_lag_ns);
        if self.producers.is_empty() {
            return out;
        }
        let mut per_producer = |name: &str, kind: &str, get: &dyn Fn(&ProducerSnapshot) -> u64| {
            let _ = writeln!(out, "# TYPE {name} {kind}");
            for (i, p) in self.producers.iter().enumerate() {
                let _ = writeln!(out, "{name}{{producer=\"{i}\"}} {}", get(p));
            }
        };
        per_producer("fd_producer_tuples_in", "counter", &|p| p.tuples_in);
        per_producer("fd_producer_filtered", "counter", &|p| p.filtered);
        per_producer("fd_producer_late_drops", "counter", &|p| p.late_drops);
        per_producer("fd_producer_watermark_us", "gauge", &|p| p.watermark_us);
        per_producer("fd_producer_epochs_sent", "counter", &|p| p.epochs_sent);
        per_producer("fd_producer_pool_reuses", "counter", &|p| p.pool_reuses);
        per_producer("fd_producer_pool_allocs", "counter", &|p| p.pool_allocs);
        per_producer("fd_producer_shed_tuples", "counter", &|p| p.shed_tuples);
        let _ = writeln!(out, "# TYPE fd_producer_ring_depth gauge");
        for (i, p) in self.producers.iter().enumerate() {
            for (s, depth) in p.ring_depth.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "fd_producer_ring_depth{{producer=\"{i}\",shard=\"{s}\"}} {depth}"
                );
            }
        }
        out
    }

    /// JSON object form, hand-rolled (the workspace builds offline and has
    /// no JSON dependency): all-numeric fields, shards as an array.
    pub fn to_json(&self) -> String {
        fn histogram(h: &HistogramSnapshot) -> String {
            format!(
                "{{\"count\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                h.count, h.p50, h.p95, h.p99
            )
        }
        let shards: Vec<String> = self
            .shards
            .iter()
            .map(|s| {
                format!(
                    concat!(
                        "{{\"queue_depth\":{},\"batches_sent\":{},",
                        "\"punctuations_sent\":{},\"tuples_processed\":{},",
                        "\"applied_watermark_us\":{},\"watermark_lag_us\":{},",
                        "\"lfta_evictions\":{},\"lfta_occupancy\":{},",
                        "\"shed_tuples\":{},",
                        "\"batch_ns\":{},\"dispatch_lag_ns\":{}}}"
                    ),
                    s.queue_depth,
                    s.batches_sent,
                    s.punctuations_sent,
                    s.tuples_processed,
                    s.applied_watermark_us,
                    s.watermark_lag_us,
                    s.lfta_evictions,
                    s.lfta_occupancy,
                    s.shed_tuples,
                    histogram(&s.batch_ns),
                    histogram(&s.dispatch_lag_ns),
                )
            })
            .collect();
        let producers: Vec<String> = self
            .producers
            .iter()
            .map(|p| {
                let depths: Vec<String> = p.ring_depth.iter().map(u64::to_string).collect();
                format!(
                    concat!(
                        "{{\"tuples_in\":{},\"filtered\":{},\"late_drops\":{},",
                        "\"watermark_us\":{},\"epochs_sent\":{},",
                        "\"pool_reuses\":{},\"pool_allocs\":{},",
                        "\"shed_tuples\":{},",
                        "\"ring_depth\":[{}]}}"
                    ),
                    p.tuples_in,
                    p.filtered,
                    p.late_drops,
                    p.watermark_us,
                    p.epochs_sent,
                    p.pool_reuses,
                    p.pool_allocs,
                    p.shed_tuples,
                    depths.join(","),
                )
            })
            .collect();
        format!(
            concat!(
                "{{\"tuples_in\":{},\"filtered\":{},\"late_drops\":{},",
                "\"dispatcher_watermark_us\":{},\"worker_panics\":{},",
                "\"restarts\":{},\"checkpoints\":{},\"checkpoint_ns\":{},",
                "\"replayed_batches\":{},",
                "\"replayed_tuples\":{},\"degraded_shards\":{},",
                "\"dropped_degraded\":{},",
                "\"wal_bytes_written\":{},\"wal_records_truncated\":{},",
                "\"checkpoints_persisted\":{},\"recovery_replayed_batches\":{},",
                "\"durability_degraded\":{},",
                "\"shed_tuples\":{},\"shed_batches\":{},\"wedged_respawns\":{},",
                "\"rows_out\":{},\"buckets_closed\":{},\"shards\":[{}],",
                "\"producers\":[{}]}}"
            ),
            self.tuples_in,
            self.filtered,
            self.late_drops,
            self.dispatcher_watermark_us,
            self.worker_panics,
            self.restarts,
            self.checkpoints,
            self.checkpoint_ns,
            self.replayed_batches,
            self.replayed_tuples,
            self.degraded_shards,
            self.dropped_degraded,
            self.wal_bytes_written,
            self.wal_records_truncated,
            self.checkpoints_persisted,
            self.recovery_replayed_batches,
            self.durability_degraded,
            self.shed_tuples,
            self.shed_batches,
            self.wedged_respawns,
            self.rows_out,
            self.buckets_closed,
            shards.join(","),
            producers.join(",")
        )
    }
}

/// A background thread that emits a [`MetricsSnapshot`] to a sink at a
/// fixed interval — e.g. appending Prometheus text to a file, or printing
/// watermark lag to stderr while a long run is in flight.
///
/// Stops (and joins its thread) on [`stop`](Reporter::stop) or drop.
pub struct Reporter {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Reporter {
    /// Spawns a reporter that calls `sink` with a fresh snapshot every
    /// `interval` until stopped. The first snapshot is emitted after one
    /// full interval.
    pub fn spawn(
        telemetry: Arc<EngineTelemetry>,
        interval: Duration,
        mut sink: impl FnMut(MetricsSnapshot) + Send + 'static,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("fd-metrics-reporter".to_owned())
            .spawn(move || {
                // Wake every few ms so stop() latency stays low even for
                // long reporting intervals.
                let tick = interval
                    .min(Duration::from_millis(20))
                    .max(Duration::from_millis(1));
                let mut elapsed = Duration::ZERO;
                while !stop2.load(Relaxed) {
                    std::thread::sleep(tick);
                    elapsed += tick;
                    if elapsed >= interval {
                        elapsed = Duration::ZERO;
                        sink(telemetry.snapshot());
                    }
                }
            })
            .expect("spawn metrics reporter");
        Self {
            stop,
            handle: Some(handle),
        }
    }

    /// Signals the thread to exit and joins it. Idempotent.
    pub fn stop(&mut self) {
        self.stop.store(true, Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Reporter {
    fn drop(&mut self) {
        self.stop();
    }
}

/// CPU time consumed by the calling thread, ns. Unlike a wall-clock span,
/// a section bracketed by two reads is not inflated when the scheduler
/// slices the thread out mid-section, and time spent blocked (channel
/// waits, condvars) is not charged at all. The `checkpoint_ns` counter is
/// measured on this clock, and the `recovery_overhead` bench uses it to
/// price the dispatch path independently of core count and machine load.
// The one unsafe block in the workspace: std exposes no thread-CPU
// clock, and pulling in `libc` for a single syscall wrapper is not worth
// a dependency. The extern declaration matches POSIX `clock_gettime`.
#[allow(unsafe_code)]
#[cfg(target_os = "linux")]
pub fn thread_cpu_ns() -> u64 {
    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }
    extern "C" {
        fn clock_gettime(clk_id: i32, tp: *mut Timespec) -> i32;
    }
    const CLOCK_THREAD_CPUTIME_ID: i32 = 3;
    let mut ts = Timespec {
        tv_sec: 0,
        tv_nsec: 0,
    };
    // SAFETY: `ts` is a valid out-pointer for the duration of the call and
    // the clock id is supported on every Linux since 2.6.12.
    let rc = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) };
    if rc == 0 {
        ts.tv_sec as u64 * 1_000_000_000 + ts.tv_nsec as u64
    } else {
        0
    }
}

/// Wall-clock fallback where no thread clock is exposed: still monotonic
/// and per-process, just charged for preempted and blocked time too.
#[cfg(not(target_os = "linux"))]
pub fn thread_cpu_ns() -> u64 {
    use std::sync::OnceLock;
    use std::time::Instant;
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        assert_eq!(LogHistogram::bucket_of(0), 0);
        assert_eq!(LogHistogram::bucket_of(1), 1);
        assert_eq!(LogHistogram::bucket_of(2), 2);
        assert_eq!(LogHistogram::bucket_of(3), 2);
        assert_eq!(LogHistogram::bucket_of(4), 3);
        assert_eq!(LogHistogram::bucket_of(1023), 10);
        assert_eq!(LogHistogram::bucket_of(1024), 11);
        assert_eq!(LogHistogram::bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn histogram_quantiles_bound_the_sample() {
        let h = LogHistogram::new();
        // 90 fast samples (~1 µs), 10 slow (~1 ms).
        for _ in 0..90 {
            h.record(1_000);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        // p50 in the 1 µs bucket: upper bound 2^10 = 1024.
        assert_eq!(s.p50, 1024);
        assert!(s.p50 >= 1_000 && s.p50 < 2_000);
        // p95 and p99 land in the 1 ms bucket: upper bound 2^20.
        assert!(s.p95 >= 1_000_000 && s.p95 < 2_000_000);
        assert_eq!(s.p95, s.p99);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let s = LogHistogram::new().snapshot();
        assert_eq!(
            s,
            HistogramSnapshot {
                count: 0,
                p50: 0,
                p95: 0,
                p99: 0
            }
        );
    }

    #[test]
    fn snapshot_reads_live_values() {
        let t = EngineTelemetry::new(2);
        t.tuples_in.store(100, Relaxed);
        t.dispatcher_watermark.store(5_000_000, Relaxed);
        t.shards()[1].applied_watermark.store(3_000_000, Relaxed);
        t.shards()[0].queue_depth.store(4, Relaxed);
        let s = t.snapshot();
        assert_eq!(s.tuples_in, 100);
        assert_eq!(s.shards[0].queue_depth, 4);
        assert_eq!(s.shards[1].watermark_lag_us, 2_000_000);
        // Shard 0 never applied a watermark: lag is the full dispatcher
        // watermark.
        assert_eq!(s.shards[0].watermark_lag_us, 5_000_000);
    }

    #[test]
    fn prometheus_format_has_typed_series() {
        let t = EngineTelemetry::new(1);
        t.tuples_in.store(42, Relaxed);
        t.shards()[0].batch_ns.record(1_000);
        let text = t.snapshot().to_prometheus();
        assert!(text.contains("# TYPE fd_tuples_in counter"));
        assert!(text.contains("fd_tuples_in 42"));
        assert!(text.contains("# TYPE fd_shard_queue_depth gauge"));
        assert!(text.contains("fd_shard_queue_depth{shard=\"0\"} 0"));
        assert!(text.contains("fd_worker_batch_ns{shard=\"0\",quantile=\"0.5\"} 1024"));
        assert!(text.contains("fd_worker_batch_ns_count{shard=\"0\"} 1"));
    }

    #[test]
    fn durability_metrics_appear_in_both_formats() {
        let t = EngineTelemetry::new(1);
        t.wal_bytes_written.store(4096, Relaxed);
        t.wal_records_truncated.store(2, Relaxed);
        t.checkpoints_persisted.store(3, Relaxed);
        t.recovery_replayed_batches.store(5, Relaxed);
        t.durability_degraded.store(1, Relaxed);
        let s = t.snapshot();
        let prom = s.to_prometheus();
        assert!(prom.contains("# TYPE fd_wal_bytes_written counter"));
        assert!(prom.contains("fd_wal_bytes_written 4096"));
        assert!(prom.contains("fd_wal_records_truncated 2"));
        assert!(prom.contains("fd_checkpoints_persisted 3"));
        assert!(prom.contains("fd_recovery_replayed_batches 5"));
        assert!(prom.contains("# TYPE fd_durability_degraded gauge"));
        assert!(prom.contains("fd_durability_degraded 1"));
        let json = s.to_json();
        assert!(json.contains("\"wal_bytes_written\":4096"));
        assert!(json.contains("\"wal_records_truncated\":2"));
        assert!(json.contains("\"checkpoints_persisted\":3"));
        assert!(json.contains("\"recovery_replayed_batches\":5"));
        assert!(json.contains("\"durability_degraded\":1"));
    }

    /// Golden-file pin of the Prometheus exposition format: the scrape a
    /// non-fabric run produces must stay byte-identical when producer
    /// metrics are absent, and a fabric run may only ever *append* to it.
    #[test]
    fn producer_series_extend_scrape_without_reordering_it() {
        let base = EngineTelemetry::new(1);
        base.tuples_in.store(42, Relaxed);
        let golden = base.snapshot().to_prometheus();
        assert!(
            !golden.contains("fd_producer_"),
            "non-fabric scrape must not mention producers"
        );

        let t = EngineTelemetry::with_producers(1, 2);
        t.tuples_in.store(42, Relaxed);
        t.producers()[1].tuples_in.store(17, Relaxed);
        t.producers()[1].epochs_sent.store(3, Relaxed);
        t.producers()[0].ring_depth[0].store(5, Relaxed);
        let text = t.snapshot().to_prometheus();
        // Additive: the entire pre-fabric scrape is a literal prefix.
        assert!(
            text.starts_with(&golden),
            "producer series must append to the existing scrape, not reshape it"
        );
        let tail = &text[golden.len()..];
        assert!(tail.contains("# TYPE fd_producer_tuples_in counter"));
        assert!(tail.contains("fd_producer_tuples_in{producer=\"0\"} 0"));
        assert!(tail.contains("fd_producer_tuples_in{producer=\"1\"} 17"));
        assert!(tail.contains("fd_producer_epochs_sent{producer=\"1\"} 3"));
        assert!(tail.contains("# TYPE fd_producer_ring_depth gauge"));
        assert!(tail.contains("fd_producer_ring_depth{producer=\"0\",shard=\"0\"} 5"));
        assert!(tail.contains("fd_producer_ring_depth{producer=\"1\",shard=\"0\"} 0"));
    }

    #[test]
    fn producer_metrics_appear_in_json() {
        let t = EngineTelemetry::with_producers(2, 2);
        t.producers()[0].pool_reuses.store(11, Relaxed);
        t.producers()[0].pool_allocs.store(4, Relaxed);
        t.producers()[1].late_drops.store(2, Relaxed);
        t.producers()[1].ring_depth[1].store(9, Relaxed);
        let json = t.snapshot().to_json();
        assert!(json.contains("\"pool_reuses\":11,\"pool_allocs\":4"));
        assert!(json.contains("\"late_drops\":2"));
        assert!(json.contains("\"ring_depth\":[0,9]"));
        assert_eq!(json.matches("\"epochs_sent\"").count(), 2);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        // A registry without producers keeps an empty array, not a missing
        // field, so downstream JSON consumers see a stable schema.
        assert!(EngineTelemetry::new(1)
            .snapshot()
            .to_json()
            .ends_with("\"producers\":[]}"));
    }

    #[test]
    fn json_is_well_formed_and_complete() {
        let t = EngineTelemetry::new(2);
        t.late_drops.store(7, Relaxed);
        let json = t.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"late_drops\":7"));
        assert!(json.matches("\"queue_depth\"").count() == 2);
        // Balanced braces/brackets — the cheap well-formedness check
        // available without a JSON parser in the offline workspace.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn reporter_emits_and_stops() {
        use std::sync::Mutex;
        let t = Arc::new(EngineTelemetry::new(1));
        t.tuples_in.store(9, Relaxed);
        let seen: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        let mut rep = Reporter::spawn(Arc::clone(&t), Duration::from_millis(5), move |s| {
            seen2.lock().unwrap().push(s.tuples_in);
        });
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while seen.lock().unwrap().is_empty() && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        rep.stop();
        let emitted = seen.lock().unwrap().clone();
        assert!(!emitted.is_empty(), "reporter never fired");
        assert!(emitted.iter().all(|&v| v == 9));
        rep.stop(); // idempotent
    }
}
