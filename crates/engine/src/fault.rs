//! Deterministic fault injection for the sharded engine.
//!
//! Recovery code that is only exercised by real crashes is recovery code
//! that never runs in CI. This module gives tests (and the `fault-matrix`
//! CI job) a way to schedule precise failures inside shard workers:
//!
//! * [`FaultKind::PanicAtTuple`] — the worker panics the instant its
//!   engine's cumulative tuple count reaches N. The fault disarms *before*
//!   panicking, so the respawned worker replays past the same point — a
//!   transient crash, the bread-and-butter supervision case.
//! * [`FaultKind::PoisonedBatch`] — same trigger, but the fault never
//!   disarms: every incarnation of the worker dies at the same tuple.
//!   Models a poison-pill input and drives the supervisor's bounded-restart
//!   degradation path.
//! * [`FaultKind::SlowShard`] — the worker sleeps for the given duration
//!   before each batch. No crash; exists to make backpressure and queue
//!   telemetry observable under a deterministically slow consumer.
//! * [`FaultKind::Disk`] — not a worker fault at all: the durability
//!   layer's I/O backend misbehaves at a scheduled operation (short write,
//!   fsync error, corrupt byte, rename failure, ENOSPC). Injected through
//!   [`crate::io::FaultyFs`], which wraps the real backend and fires the
//!   fault at the Nth matching filesystem operation.
//!
//! Because the trigger position is the *engine's* tuple counter — which is
//! checkpointed and restored — "panic at tuple N" means the same logical
//! tuple across restarts, independent of batching or replay. Disk faults
//! count filesystem operations instead, which are just as deterministic:
//! the WAL writer performs an identical operation sequence for an
//! identical input stream.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Which filesystem operation a [`DiskFault`] sabotages, and how.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskFaultKind {
    /// The Nth write persists only a prefix of its buffer, then errors —
    /// a torn write, exactly what a crash mid-`write(2)` leaves behind.
    ShortWrite,
    /// The Nth fsync returns an error (data may or may not be durable).
    FsyncError,
    /// The Nth write flips one payload byte and reports success — silent
    /// media corruption, caught only by CRC verification on read-back.
    CorruptByte,
    /// The Nth rename fails (the commit step of every atomic-publish).
    RenameFail,
    /// From the Nth write on, every write fails with `ENOSPC` — a full
    /// disk is persistent, unlike the one-shot faults above.
    Enospc,
}

impl DiskFaultKind {
    /// Every kind, in the order used by seed-driven selection and the
    /// fault-matrix tests.
    pub const ALL: [DiskFaultKind; 5] = [
        DiskFaultKind::ShortWrite,
        DiskFaultKind::FsyncError,
        DiskFaultKind::CorruptByte,
        DiskFaultKind::RenameFail,
        DiskFaultKind::Enospc,
    ];
}

/// A scheduled disk fault: `kind` fires at the `at_op`-th matching
/// filesystem operation (1-based, counted per operation type).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskFault {
    /// What goes wrong.
    pub kind: DiskFaultKind,
    /// Which matching operation triggers it (1-based).
    pub at_op: u64,
}

impl DiskFault {
    /// Derives a deterministic disk fault from a seed: the seed picks both
    /// the kind and the trigger operation, so a CI matrix of seeds sweeps
    /// fault kinds across different phases of the WAL/checkpoint protocol.
    pub fn from_seed(seed: u64) -> Self {
        let kind = DiskFaultKind::ALL[(seed % 5) as usize];
        // Spread triggers across the first few dozen operations: early ones
        // hit segment creation and the first appends, later ones land in
        // checkpoint persistence and manifest commits.
        let at_op = 1 + (seed / 5) % 24;
        Self { kind, at_op }
    }
}

/// What to inject, and when.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic when the shard engine's cumulative tuple count reaches N
    /// (1-based: `PanicAtTuple(100)` fires on the 100th tuple). Transient:
    /// disarms before firing, so the replay succeeds.
    PanicAtTuple(u64),
    /// Like [`FaultKind::PanicAtTuple`], but permanent: every respawned
    /// worker hits it again, exhausting the restart budget.
    PoisonedBatch(u64),
    /// Sleep this long before processing each batch.
    SlowShard(Duration),
    /// Wedge (spin without consuming) when the engine's cumulative tuple
    /// count reaches N — an infinite loop, not a crash, so supervision's
    /// panic path never sees it. Only the stuck-shard watchdog can: the
    /// wedged worker spins until its lease is retired, then exits with no
    /// side effects. Transient: disarms before wedging, so the respawned
    /// incarnation replays past the same tuple.
    WedgeAtTuple(u64),
    /// Sabotage the durability layer's filesystem backend (see
    /// [`DiskFault`]). Ignored by shard workers; consumed by
    /// [`crate::shard::ShardedEngine`] when opening a durable store, which
    /// wraps its I/O backend in [`crate::io::FaultyFs`].
    Disk(DiskFault),
}

/// A fault bound to one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Index of the shard whose worker misbehaves.
    pub shard: usize,
    /// The fault to inject there.
    pub kind: FaultKind,
}

impl FaultPlan {
    /// Parses the compact spec used by the CLI and the CI fault matrix:
    ///
    /// * `panic:SHARD:N` — transient panic at tuple N on shard SHARD
    /// * `poison:SHARD:N` — permanent panic at tuple N on shard SHARD
    /// * `slow:SHARD:MS` — sleep MS milliseconds per batch on shard SHARD
    /// * `wedge:SHARD:N` — spin (stop consuming, no crash) at tuple N on
    ///   shard SHARD until the watchdog retires the worker's lease
    /// * `disk:KIND:N` — disk fault at the Nth matching I/O operation,
    ///   KIND one of `short`, `fsync`, `corrupt`, `rename`, `enospc`
    ///   (the shard field is meaningless for disk faults and reads `0`)
    ///
    /// Returns `None` on any malformed spec.
    pub fn parse(spec: &str) -> Option<Self> {
        let mut parts = spec.split(':');
        let kind = parts.next()?;
        if kind == "disk" {
            let disk_kind = match parts.next()? {
                "short" => DiskFaultKind::ShortWrite,
                "fsync" => DiskFaultKind::FsyncError,
                "corrupt" => DiskFaultKind::CorruptByte,
                "rename" => DiskFaultKind::RenameFail,
                "enospc" => DiskFaultKind::Enospc,
                _ => return None,
            };
            let at_op: u64 = parts.next()?.parse().ok()?;
            if parts.next().is_some() || at_op == 0 {
                return None;
            }
            return Some(Self {
                shard: 0,
                kind: FaultKind::Disk(DiskFault {
                    kind: disk_kind,
                    at_op,
                }),
            });
        }
        let shard: usize = parts.next()?.parse().ok()?;
        let n: u64 = parts.next()?.parse().ok()?;
        if parts.next().is_some() {
            return None;
        }
        let kind = match kind {
            "panic" => FaultKind::PanicAtTuple(n),
            "poison" => FaultKind::PoisonedBatch(n),
            "slow" => FaultKind::SlowShard(Duration::from_millis(n)),
            "wedge" => FaultKind::WedgeAtTuple(n),
            _ => return None,
        };
        Some(Self { shard, kind })
    }
}

/// Reads a seed for randomized fault placement from the `FD_FAULT`
/// environment variable (decimal u64). `None` when unset or malformed —
/// callers fall back to a fixed default seed.
pub fn env_seed() -> Option<u64> {
    std::env::var("FD_FAULT").ok()?.trim().parse().ok()
}

/// The live fault shared between the dispatcher and every incarnation of a
/// shard worker. `armed` survives worker restarts (it lives in an `Arc`),
/// which is exactly how a transient fault fires once and a permanent one
/// fires forever.
#[derive(Debug)]
pub struct FaultState {
    /// The scheduled fault.
    pub plan: FaultPlan,
    armed: AtomicBool,
}

impl FaultState {
    /// Arms the plan.
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            plan,
            armed: AtomicBool::new(true),
        }
    }

    /// Whether the fault is still live.
    pub fn armed(&self) -> bool {
        self.armed.load(Ordering::Relaxed)
    }

    /// Disarms the fault (transient faults call this just before firing).
    pub fn disarm(&self) {
        self.armed.store(false, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_kinds() {
        assert_eq!(
            FaultPlan::parse("panic:2:1000"),
            Some(FaultPlan {
                shard: 2,
                kind: FaultKind::PanicAtTuple(1000)
            })
        );
        assert_eq!(
            FaultPlan::parse("poison:0:5"),
            Some(FaultPlan {
                shard: 0,
                kind: FaultKind::PoisonedBatch(5)
            })
        );
        assert_eq!(
            FaultPlan::parse("slow:1:250"),
            Some(FaultPlan {
                shard: 1,
                kind: FaultKind::SlowShard(Duration::from_millis(250))
            })
        );
        assert_eq!(
            FaultPlan::parse("wedge:3:64"),
            Some(FaultPlan {
                shard: 3,
                kind: FaultKind::WedgeAtTuple(64)
            })
        );
    }

    #[test]
    fn parses_disk_faults() {
        assert_eq!(
            FaultPlan::parse("disk:short:3"),
            Some(FaultPlan {
                shard: 0,
                kind: FaultKind::Disk(DiskFault {
                    kind: DiskFaultKind::ShortWrite,
                    at_op: 3
                })
            })
        );
        for (spec, kind) in [
            ("disk:fsync:1", DiskFaultKind::FsyncError),
            ("disk:corrupt:7", DiskFaultKind::CorruptByte),
            ("disk:rename:2", DiskFaultKind::RenameFail),
            ("disk:enospc:9", DiskFaultKind::Enospc),
        ] {
            let plan = FaultPlan::parse(spec).expect(spec);
            assert!(matches!(plan.kind, FaultKind::Disk(d) if d.kind == kind));
        }
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "",
            "panic",
            "panic:1",
            "panic:1:2:3",
            "explode:0:1",
            "panic:x:1",
            "panic:0:y",
            "disk",
            "disk:short",
            "disk:short:0",
            "disk:short:1:2",
            "disk:melt:1",
            "disk:short:x",
        ] {
            assert_eq!(FaultPlan::parse(bad), None, "spec {bad:?}");
        }
    }

    #[test]
    fn seeded_disk_faults_cover_all_kinds() {
        let mut seen = std::collections::HashSet::new();
        for seed in 0..25u64 {
            let f = DiskFault::from_seed(seed);
            assert!(f.at_op >= 1);
            seen.insert(std::mem::discriminant(&f.kind));
        }
        assert_eq!(seen.len(), DiskFaultKind::ALL.len());
    }

    #[test]
    fn transient_disarm() {
        let f = FaultState::new(FaultPlan {
            shard: 0,
            kind: FaultKind::PanicAtTuple(1),
        });
        assert!(f.armed());
        f.disarm();
        assert!(!f.armed());
    }
}
