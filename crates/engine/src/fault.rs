//! Deterministic fault injection for the sharded engine.
//!
//! Recovery code that is only exercised by real crashes is recovery code
//! that never runs in CI. This module gives tests (and the `fault-matrix`
//! CI job) a way to schedule precise failures inside shard workers:
//!
//! * [`FaultKind::PanicAtTuple`] — the worker panics the instant its
//!   engine's cumulative tuple count reaches N. The fault disarms *before*
//!   panicking, so the respawned worker replays past the same point — a
//!   transient crash, the bread-and-butter supervision case.
//! * [`FaultKind::PoisonedBatch`] — same trigger, but the fault never
//!   disarms: every incarnation of the worker dies at the same tuple.
//!   Models a poison-pill input and drives the supervisor's bounded-restart
//!   degradation path.
//! * [`FaultKind::SlowShard`] — the worker sleeps for the given duration
//!   before each batch. No crash; exists to make backpressure and queue
//!   telemetry observable under a deterministically slow consumer.
//!
//! Because the trigger position is the *engine's* tuple counter — which is
//! checkpointed and restored — "panic at tuple N" means the same logical
//! tuple across restarts, independent of batching or replay.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// What to inject, and when.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic when the shard engine's cumulative tuple count reaches N
    /// (1-based: `PanicAtTuple(100)` fires on the 100th tuple). Transient:
    /// disarms before firing, so the replay succeeds.
    PanicAtTuple(u64),
    /// Like [`FaultKind::PanicAtTuple`], but permanent: every respawned
    /// worker hits it again, exhausting the restart budget.
    PoisonedBatch(u64),
    /// Sleep this long before processing each batch.
    SlowShard(Duration),
}

/// A fault bound to one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Index of the shard whose worker misbehaves.
    pub shard: usize,
    /// The fault to inject there.
    pub kind: FaultKind,
}

impl FaultPlan {
    /// Parses the compact spec used by the CLI and the CI fault matrix:
    ///
    /// * `panic:SHARD:N` — transient panic at tuple N on shard SHARD
    /// * `poison:SHARD:N` — permanent panic at tuple N on shard SHARD
    /// * `slow:SHARD:MS` — sleep MS milliseconds per batch on shard SHARD
    ///
    /// Returns `None` on any malformed spec.
    pub fn parse(spec: &str) -> Option<Self> {
        let mut parts = spec.split(':');
        let kind = parts.next()?;
        let shard: usize = parts.next()?.parse().ok()?;
        let n: u64 = parts.next()?.parse().ok()?;
        if parts.next().is_some() {
            return None;
        }
        let kind = match kind {
            "panic" => FaultKind::PanicAtTuple(n),
            "poison" => FaultKind::PoisonedBatch(n),
            "slow" => FaultKind::SlowShard(Duration::from_millis(n)),
            _ => return None,
        };
        Some(Self { shard, kind })
    }
}

/// Reads a seed for randomized fault placement from the `FD_FAULT`
/// environment variable (decimal u64). `None` when unset or malformed —
/// callers fall back to a fixed default seed.
pub fn env_seed() -> Option<u64> {
    std::env::var("FD_FAULT").ok()?.trim().parse().ok()
}

/// The live fault shared between the dispatcher and every incarnation of a
/// shard worker. `armed` survives worker restarts (it lives in an `Arc`),
/// which is exactly how a transient fault fires once and a permanent one
/// fires forever.
#[derive(Debug)]
pub struct FaultState {
    /// The scheduled fault.
    pub plan: FaultPlan,
    armed: AtomicBool,
}

impl FaultState {
    /// Arms the plan.
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            plan,
            armed: AtomicBool::new(true),
        }
    }

    /// Whether the fault is still live.
    pub fn armed(&self) -> bool {
        self.armed.load(Ordering::Relaxed)
    }

    /// Disarms the fault (transient faults call this just before firing).
    pub fn disarm(&self) {
        self.armed.store(false, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_kinds() {
        assert_eq!(
            FaultPlan::parse("panic:2:1000"),
            Some(FaultPlan {
                shard: 2,
                kind: FaultKind::PanicAtTuple(1000)
            })
        );
        assert_eq!(
            FaultPlan::parse("poison:0:5"),
            Some(FaultPlan {
                shard: 0,
                kind: FaultKind::PoisonedBatch(5)
            })
        );
        assert_eq!(
            FaultPlan::parse("slow:1:250"),
            Some(FaultPlan {
                shard: 1,
                kind: FaultKind::SlowShard(Duration::from_millis(250))
            })
        );
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "",
            "panic",
            "panic:1",
            "panic:1:2:3",
            "explode:0:1",
            "panic:x:1",
            "panic:0:y",
        ] {
            assert_eq!(FaultPlan::parse(bad), None, "spec {bad:?}");
        }
    }

    #[test]
    fn transient_disarm() {
        let f = FaultState::new(FaultPlan {
            shard: 0,
            kind: FaultKind::PanicAtTuple(1),
        });
        assert!(f.armed());
        f.disarm();
        assert!(!f.armed());
    }
}
