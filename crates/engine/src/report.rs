//! Result-row rendering: turn engine output into CSV or aligned text, the
//! way GS streams query results onward to consumers.

use std::fmt::Write as _;

use crate::engine::Row;
use crate::tuple::{secs, MICROS_PER_SEC};
use crate::udaf::AggValue;

/// Renders rows as CSV with header
/// `bucket_start_secs,key,value` — item-valued aggregates expand to one
/// line per item with a fourth `item_value` column.
pub fn rows_to_csv(rows: &[Row]) -> String {
    let mut out = String::from("bucket_start_secs,key,value,item_value\n");
    for r in rows {
        csv_value(&mut out, secs(r.bucket_start), r.key, &r.value);
    }
    out
}

fn csv_value(out: &mut String, bucket: f64, key: u64, value: &AggValue) {
    match value {
        AggValue::Float(x) => {
            let _ = writeln!(out, "{bucket},{key},{x},");
        }
        AggValue::Items(items) => {
            for iv in items {
                let _ = writeln!(out, "{bucket},{key},{},{}", iv.item, iv.value);
            }
        }
        AggValue::Multi(parts) => {
            for p in parts {
                csv_value(out, bucket, key, p);
            }
        }
    }
}

/// Renders rows as an aligned text table for terminal display; buckets are
/// shown as minute indices (the `tb` column of the paper's GSQL output).
pub fn rows_to_table(rows: &[Row], bucket_secs: u64) -> String {
    let mut out = format!("{:>8} {:>20} {:>24}\n", "tb", "key", "value");
    for r in rows {
        let tb = r.bucket_start / (bucket_secs.max(1) * MICROS_PER_SEC);
        let _ = writeln!(out, "{:>8} {:>20} {:>24}", tb, r.key, r.value.to_string());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::udaf::ItemValue;

    fn rows() -> Vec<Row> {
        vec![
            Row {
                bucket_start: 0,
                key: 7,
                value: AggValue::Float(1.5),
            },
            Row {
                bucket_start: 60 * MICROS_PER_SEC,
                key: 9,
                value: AggValue::Items(vec![
                    ItemValue {
                        item: 42,
                        value: 3.0,
                    },
                    ItemValue {
                        item: 43,
                        value: 2.0,
                    },
                ]),
            },
        ]
    }

    #[test]
    fn csv_expands_items() {
        let csv = rows_to_csv(&rows());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "bucket_start_secs,key,value,item_value");
        assert_eq!(lines[1], "0,7,1.5,");
        assert_eq!(lines[2], "60,9,42,3");
        assert_eq!(lines[3], "60,9,43,2");
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn table_shows_bucket_indices() {
        let txt = rows_to_table(&rows(), 60);
        assert!(txt.contains("tb"));
        let second_row = txt.lines().nth(2).unwrap();
        assert!(second_row.trim_start().starts_with('1'), "{second_row}");
    }

    #[test]
    fn empty_rows_render_header_only() {
        assert_eq!(rows_to_csv(&[]).lines().count(), 1);
        assert_eq!(rows_to_table(&[], 60).lines().count(), 1);
    }

    #[test]
    fn multi_values_flatten_in_csv_and_nest_in_table() {
        let rows = vec![Row {
            bucket_start: 0,
            key: 3,
            value: AggValue::Multi(vec![
                AggValue::Float(7.0),
                AggValue::Items(vec![ItemValue {
                    item: 1,
                    value: 2.0,
                }]),
            ]),
        }];
        let csv = rows_to_csv(&rows);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[1], "0,3,7,");
        assert_eq!(lines[2], "0,3,1,2");
        let table = rows_to_table(&rows, 60);
        assert!(table.contains("(7.0000, [1:2.000])"), "{table}");
    }
}
