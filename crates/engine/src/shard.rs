//! Sharded parallel execution: one query, N worker threads.
//!
//! Forward decay makes stream summaries *mergeable* — the numerator
//! `g(t_i − L)` of every weight is frozen at arrival, so two partial
//! summaries over disjoint substreams with the same landmark combine into
//! the summary of their union (Section VI-B of the paper: "distributed
//! computation … each site maintains a summary of its local stream").
//! [`ShardedEngine`] exploits exactly that: it hash-partitions the tuple
//! stream across `n_shards` worker threads, each running a full
//! single-threaded [`Engine`] (its own LFTA + HFTA) over its substream,
//! and combines the per-shard closed buckets with
//! [`Aggregator::merge_boxed`] at the end.
//!
//! ## Semantics
//!
//! The dispatcher (the caller's thread) replicates the single-threaded
//! engine's admission logic *globally*: selection, the late-tuple check
//! against closed buckets, and the watermark advance all happen before a
//! tuple is routed, so a tuple is accepted or dropped by the sharded
//! engine exactly when the single-threaded engine would accept or drop
//! it. Worker watermarks are kept in sync by broadcasting the global
//! watermark as a punctuation after every batch, which also makes bucket
//! closing deterministic across runs.
//!
//! Workers run in *state mode* ([`Engine::keep_closed_state`]): a closed
//! bucket yields raw [`ClosedGroup`] aggregation state rather than
//! emitted rows. [`ShardedEngine::finish`] folds all shards' groups into
//! one `BTreeMap` keyed by `(bucket, key)` — merging states that met the
//! same group on different shards — and only then evaluates each group at
//! its bucket end, producing rows in the same (bucket, key) order as the
//! single-threaded engine.
//!
//! ## Routing
//!
//! [`ShardBy::Key`] (the default) sends every tuple of a group to the
//! same shard, so group states never split and results are *identical*
//! to the single-threaded engine for every aggregator — this is the mode
//! the equivalence tests pin down. [`ShardBy::RoundRobin`] spreads each
//! group across all shards and relies on the merge path; it matches the
//! single-threaded engine exactly for the exactly-mergeable aggregates
//! (counts, sums — Theorem 1 state is a pair of scalars that add), and
//! within approximation bounds for the sketch/sampler summaries.

use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::sync::mpsc::{sync_channel, SyncSender};
use std::thread::JoinHandle;

use crate::engine::{ClosedGroup, Engine, EngineStats, Row, StreamEvent};
use crate::tuple::{secs, Micros, Packet};
use crate::udaf::{Aggregator, Query};

/// How the dispatcher assigns accepted tuples to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardBy {
    /// Hash of the group key: each group lives wholly on one shard, so
    /// sharded results are identical to the single-threaded engine for
    /// every aggregator.
    #[default]
    Key,
    /// Strict rotation: each group's state splits across all shards and
    /// is re-assembled by merging — the paper's distributed-computation
    /// scenario. Exact for additively-mergeable aggregates (count/sum),
    /// approximate within summary guarantees otherwise.
    RoundRobin,
}

/// Messages from the dispatcher to a worker.
enum Msg {
    Batch(Vec<Packet>),
    Punctuate(Micros),
}

/// Per-shard channel depth (in batches) before the dispatcher blocks.
const CHANNEL_DEPTH: usize = 8;
/// Tuples buffered per shard before an automatic channel send.
const FLUSH_THRESHOLD: usize = 1024;

/// A parallel instance of one continuous query across N worker threads.
///
/// ```
/// use fd_engine::prelude::*;
/// use fd_core::decay::Monomial;
///
/// let query = Query::builder("decayed_traffic")
///     .group_by(|p| p.dst_key())
///     .bucket_secs(60)
///     .aggregate(fwd_sum_factory(Monomial::quadratic(), |p| p.len as f64))
///     .build();
/// let mut sharded = ShardedEngine::new(query, 4);
/// # let pkt = Packet { ts: 1_000_000, src_ip: 1, dst_ip: 2, src_port: 3,
/// #                    dst_port: 80, len: 100, proto: Proto::Tcp };
/// sharded.process_batch(&[StreamEvent::Data(pkt)]);
/// let rows = sharded.finish();
/// assert_eq!(rows.len(), 1);
/// ```
pub struct ShardedEngine {
    query: Query,
    routing: ShardBy,
    senders: Vec<SyncSender<Msg>>,
    workers: Vec<JoinHandle<(Vec<ClosedGroup>, EngineStats)>>,
    /// Per-shard staging buffers, reused between sends.
    pending: Vec<Vec<Packet>>,
    rr: usize,
    watermark: Micros,
    closed_below: u64,
    /// Dispatcher-side admission counters (tuples_in / filtered /
    /// late_drops); worker-side counters are folded in at finish.
    stats: EngineStats,
    shard_stats: Vec<EngineStats>,
    done: bool,
}

impl ShardedEngine {
    /// Spawns `n_shards` workers for the query. Panics on zero shards;
    /// see [`ShardedEngine::try_new`] for the reporting variant.
    pub fn new(query: Query, n_shards: usize) -> Self {
        Self::try_new(query, n_shards).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Spawns `n_shards` workers for the query, reporting instead of
    /// panicking when `n_shards` is zero.
    pub fn try_new(query: Query, n_shards: usize) -> Result<Self, fd_core::Error> {
        if n_shards == 0 {
            return Err(fd_core::Error::InvalidParameter {
                name: "n_shards",
                value: 0.0,
                requirement: "at least one shard",
            });
        }
        let mut senders = Vec::with_capacity(n_shards);
        let mut workers = Vec::with_capacity(n_shards);
        for i in 0..n_shards {
            // The dispatcher has already applied the selection; don't pay
            // for it again on the worker.
            let mut worker_query = query.clone();
            worker_query.filter = None;
            let (tx, rx) = sync_channel::<Msg>(CHANNEL_DEPTH);
            let handle = std::thread::Builder::new()
                .name(format!("fd-shard-{i}"))
                .spawn(move || {
                    let mut engine = Engine::new(worker_query);
                    engine.keep_closed_state();
                    while let Ok(msg) = rx.recv() {
                        match msg {
                            Msg::Batch(pkts) => {
                                for p in &pkts {
                                    engine.process(p);
                                }
                            }
                            Msg::Punctuate(ts) => engine.punctuate(ts),
                        }
                    }
                    // Channel closed: end of stream.
                    let state = engine.finish_state();
                    (state, engine.stats())
                })
                .expect("spawn shard worker");
            senders.push(tx);
            workers.push(handle);
        }
        Ok(Self {
            query,
            routing: ShardBy::Key,
            senders,
            workers,
            pending: vec![Vec::new(); n_shards],
            rr: 0,
            watermark: 0,
            closed_below: 0,
            stats: EngineStats::default(),
            shard_stats: vec![EngineStats::default(); n_shards],
            done: false,
        })
    }

    /// Sets the routing policy (default [`ShardBy::Key`]). Must be called
    /// before any tuple is processed.
    pub fn routing(mut self, routing: ShardBy) -> Self {
        assert_eq!(self.stats.tuples_in, 0, "set routing before processing");
        self.routing = routing;
        self
    }

    /// Number of worker shards.
    pub fn n_shards(&self) -> usize {
        self.pending.len()
    }

    /// The query's display name.
    pub fn query_name(&self) -> &str {
        &self.query.name
    }

    fn route(&mut self, key: u64) -> usize {
        match self.routing {
            // Fibonacci hash: multiply by 2⁶⁴/φ and fold. Deterministic
            // and well-mixed even for dense small keys.
            ShardBy::Key => {
                (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) % self.n_shards() as u64) as usize
            }
            ShardBy::RoundRobin => {
                let s = self.rr;
                self.rr = (self.rr + 1) % self.n_shards();
                s
            }
        }
    }

    /// Offers one tuple: global admission (filter, late check, watermark),
    /// then staging for the owning shard. Mirrors [`Engine::process`]
    /// decision for decision.
    pub fn process(&mut self, pkt: &Packet) {
        debug_assert!(!self.done, "process after finish");
        self.stats.tuples_in += 1;
        if let Some(f) = &self.query.filter {
            if !f(pkt) {
                self.stats.filtered += 1;
                return;
            }
        }
        let bucket = pkt.ts / self.query.bucket_micros;
        if bucket < self.closed_below {
            self.stats.late_drops += 1;
            return;
        }
        self.watermark = self.watermark.max(pkt.ts);
        let key = (self.query.group_by)(pkt);
        let shard = self.route(key);
        self.pending[shard].push(*pkt);
        if self.pending[shard].len() >= FLUSH_THRESHOLD {
            let batch = std::mem::take(&mut self.pending[shard]);
            self.send(shard, Msg::Batch(batch));
        }
        let target =
            self.watermark.saturating_sub(self.query.slack_micros) / self.query.bucket_micros;
        self.closed_below = self.closed_below.max(target);
    }

    /// Processes a punctuation: advances the global watermark and
    /// broadcasts it, closing due buckets on every shard.
    pub fn punctuate(&mut self, ts: Micros) {
        self.watermark = self.watermark.max(ts);
        let target =
            self.watermark.saturating_sub(self.query.slack_micros) / self.query.bucket_micros;
        self.closed_below = self.closed_below.max(target);
        self.sync_watermark();
    }

    /// Offers a batch of stream elements, then broadcasts the advanced
    /// watermark so every shard closes the same buckets — the per-batch
    /// synchronisation point of the sharded pipeline.
    pub fn process_batch(&mut self, events: &[StreamEvent]) {
        for ev in events {
            match ev {
                StreamEvent::Data(pkt) => self.process(pkt),
                StreamEvent::Punctuation(ts) => self.punctuate(*ts),
            }
        }
        self.sync_watermark();
    }

    /// Flushes staged tuples and broadcasts the current global watermark
    /// to all shards.
    fn sync_watermark(&mut self) {
        for shard in 0..self.n_shards() {
            if !self.pending[shard].is_empty() {
                let batch = std::mem::take(&mut self.pending[shard]);
                self.send(shard, Msg::Batch(batch));
            }
        }
        let w = self.watermark;
        if w > 0 {
            for shard in 0..self.n_shards() {
                self.send(shard, Msg::Punctuate(w));
            }
        }
    }

    fn send(&mut self, shard: usize, msg: Msg) {
        // A send fails only if the worker is gone — i.e. it panicked; the
        // join in finish() will surface that panic, so just report here.
        self.senders[shard]
            .send(msg)
            .unwrap_or_else(|_| panic!("shard {shard} worker has died"));
    }

    /// Ends the stream: flushes all shards, merges their closed buckets,
    /// and returns every row in (bucket, key) order — the same order the
    /// single-threaded engine emits. Subsequent calls return no rows.
    pub fn finish(&mut self) -> Vec<Row> {
        if self.done {
            return Vec::new();
        }
        self.done = true;
        for shard in 0..self.n_shards() {
            if !self.pending[shard].is_empty() {
                let batch = std::mem::take(&mut self.pending[shard]);
                self.send(shard, Msg::Batch(batch));
            }
        }
        self.senders.clear(); // closes every channel: workers drain and exit
        let mut combined: BTreeMap<(u64, u64), Box<dyn Aggregator>> = BTreeMap::new();
        for (shard, handle) in self.workers.drain(..).enumerate() {
            let (closed, stats) = handle.join().unwrap_or_else(|e| {
                std::panic::resume_unwind(e);
            });
            self.shard_stats[shard] = stats;
            for cg in closed {
                match combined.entry((cg.bucket, cg.key)) {
                    Entry::Occupied(mut e) => e.get_mut().merge_boxed(cg.agg),
                    Entry::Vacant(e) => {
                        e.insert(cg.agg);
                    }
                }
            }
        }
        let bucket_micros = self.query.bucket_micros;
        let mut last_bucket = None;
        let rows: Vec<Row> = combined
            .into_iter()
            .map(|((bucket, key), agg)| {
                if last_bucket != Some(bucket) {
                    last_bucket = Some(bucket);
                    self.stats.buckets_closed += 1;
                }
                Row {
                    bucket_start: bucket * bucket_micros,
                    key,
                    value: agg.emit(secs((bucket + 1) * bucket_micros)),
                }
            })
            .collect();
        self.stats.rows_out = rows.len() as u64;
        rows
    }

    /// Runs a whole stream through the query and returns all rows.
    pub fn run(&mut self, stream: impl IntoIterator<Item = Packet>) -> Vec<Row> {
        for pkt in stream {
            self.process(&pkt);
        }
        self.finish()
    }

    /// Combined execution counters: dispatcher admission counts plus the
    /// shard-side LFTA evictions, and the combiner's row/bucket counts.
    /// Shard-side numbers are folded in by [`ShardedEngine::finish`].
    pub fn stats(&self) -> EngineStats {
        let shards = crate::metrics::combine_shard_stats(&self.shard_stats);
        EngineStats {
            lfta_evictions: shards.lfta_evictions,
            ..self.stats
        }
    }

    /// Raw per-shard engine counters (populated by
    /// [`ShardedEngine::finish`]).
    pub fn per_shard_stats(&self) -> &[EngineStats] {
        &self.shard_stats
    }
}

impl Drop for ShardedEngine {
    fn drop(&mut self) {
        // Close channels and reap workers so an abandoned engine doesn't
        // leak threads.
        self.senders.clear();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregators::{count_factory, fwd_sum_factory};
    use crate::tuple::{Proto, MICROS_PER_SEC};
    use fd_core::decay::Monomial;

    fn pkt(ts_s: f64, dst_ip: u32) -> Packet {
        Packet {
            ts: (ts_s * MICROS_PER_SEC as f64) as Micros,
            src_ip: 1,
            dst_ip,
            src_port: 1000,
            dst_port: 80,
            len: 100,
            proto: Proto::Tcp,
        }
    }

    fn count_query() -> Query {
        Query::builder("count")
            .group_by(|p| p.dst_host())
            .bucket_secs(60)
            .aggregate(count_factory())
            .two_level(true)
            .lfta_slots(64)
            .build()
    }

    #[test]
    fn sharded_counts_match_single_threaded() {
        let stream: Vec<Packet> = (0..10_000)
            .map(|i| pkt(0.01 * i as f64, (i % 97) as u32))
            .collect();
        let single = Engine::new(count_query()).run(stream.clone());
        let sharded = ShardedEngine::new(count_query(), 4).run(stream);
        assert_eq!(single.len(), sharded.len());
        for (a, b) in single.iter().zip(&sharded) {
            assert_eq!((a.bucket_start, a.key), (b.bucket_start, b.key));
            assert_eq!(a.value, b.value);
        }
    }

    #[test]
    fn round_robin_merges_split_groups_exactly() {
        // Every group's state splits across all 4 shards; counts are
        // additively mergeable so the merge path must reassemble them
        // exactly.
        let stream: Vec<Packet> = (0..8_000)
            .map(|i| pkt(0.005 * i as f64, (i % 13) as u32))
            .collect();
        let single = Engine::new(count_query()).run(stream.clone());
        let sharded = ShardedEngine::new(count_query(), 4)
            .routing(ShardBy::RoundRobin)
            .run(stream);
        assert_eq!(single.len(), sharded.len());
        for (a, b) in single.iter().zip(&sharded) {
            assert_eq!((a.bucket_start, a.key), (b.bucket_start, b.key));
            assert_eq!(a.value, b.value);
        }
    }

    #[test]
    fn forward_decayed_sum_shards_by_key() {
        let q = || {
            Query::builder("fwd")
                .group_by(|p| p.dst_host())
                .bucket_secs(60)
                .aggregate(fwd_sum_factory(Monomial::quadratic(), |p| p.len as f64))
                .two_level(false)
                .build()
        };
        let stream: Vec<Packet> = (0..5_000)
            .map(|i| pkt(0.03 * i as f64, (i % 31) as u32))
            .collect();
        let single = Engine::new(q()).run(stream.clone());
        let sharded = ShardedEngine::new(q(), 4).run(stream);
        assert_eq!(single.len(), sharded.len());
        for (a, b) in single.iter().zip(&sharded) {
            assert_eq!((a.bucket_start, a.key), (b.bucket_start, b.key));
            assert_eq!(a.value, b.value, "key {}", a.key);
        }
    }

    #[test]
    fn late_tuples_drop_identically() {
        let mut single = Engine::new(count_query());
        let mut sharded = ShardedEngine::new(count_query(), 4);
        let events = [
            StreamEvent::Data(pkt(10.0, 1)),
            StreamEvent::Punctuation(130 * MICROS_PER_SEC),
            StreamEvent::Data(pkt(15.0, 1)), // late: bucket 0 closed
            StreamEvent::Data(pkt(140.0, 2)),
        ];
        for ev in &events {
            single.process_event(ev);
        }
        sharded.process_batch(&events);
        let s_rows = single.finish();
        let p_rows = sharded.finish();
        assert_eq!(s_rows.len(), p_rows.len());
        assert_eq!(single.stats().late_drops, 1);
        assert_eq!(sharded.stats().late_drops, 1);
    }

    #[test]
    fn stats_aggregate_across_shards() {
        let q = Query::builder("stats")
            .filter(|p| p.proto == Proto::Tcp)
            .group_by(|p| p.dst_host())
            .bucket_secs(60)
            .aggregate(count_factory())
            .build();
        let mut e = ShardedEngine::new(q, 3);
        for i in 0..300 {
            e.process(&pkt(i as f64 * 0.1, (i % 7) as u32));
        }
        let rows = e.finish();
        let stats = e.stats();
        assert_eq!(stats.tuples_in, 300);
        assert_eq!(stats.rows_out, rows.len() as u64);
        assert!(stats.buckets_closed >= 1);
        let per_shard = e.per_shard_stats();
        assert_eq!(per_shard.len(), 3);
        assert_eq!(
            per_shard.iter().map(|s| s.tuples_in).sum::<u64>(),
            300,
            "every accepted tuple lands on exactly one shard"
        );
    }

    #[test]
    fn try_new_rejects_zero_shards() {
        assert!(matches!(
            ShardedEngine::try_new(count_query(), 0),
            Err(fd_core::Error::InvalidParameter {
                name: "n_shards",
                ..
            })
        ));
    }

    #[test]
    fn finish_is_idempotent_and_drop_reaps_workers() {
        let mut e = ShardedEngine::new(count_query(), 2);
        e.process(&pkt(1.0, 1));
        assert_eq!(e.finish().len(), 1);
        assert!(e.finish().is_empty());
        let e2 = ShardedEngine::new(count_query(), 2);
        drop(e2); // must not hang or leak
    }
}
