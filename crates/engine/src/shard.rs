//! Sharded parallel execution: one query, N worker threads.
//!
//! Forward decay makes stream summaries *mergeable* — the numerator
//! `g(t_i − L)` of every weight is frozen at arrival, so two partial
//! summaries over disjoint substreams with the same landmark combine into
//! the summary of their union (Section VI-B of the paper: "distributed
//! computation … each site maintains a summary of its local stream").
//! [`ShardedEngine`] exploits exactly that: it hash-partitions the tuple
//! stream across `n_shards` worker threads, each running a full
//! single-threaded [`Engine`] (its own LFTA + HFTA) over its substream,
//! and combines the per-shard closed buckets with
//! [`Aggregator::merge_boxed`] at the end.
//!
//! ## Semantics
//!
//! The dispatcher (the caller's thread) replicates the single-threaded
//! engine's admission logic *globally*: selection, the late-tuple check
//! against closed buckets, and the watermark advance all happen before a
//! tuple is routed, so a tuple is accepted or dropped by the sharded
//! engine exactly when the single-threaded engine would accept or drop
//! it. Worker watermarks are kept in sync by broadcasting the global
//! watermark as a punctuation after every batch, which also makes bucket
//! closing deterministic across runs.
//!
//! Workers run in *state mode* ([`Engine::keep_closed_state`]): a closed
//! bucket yields raw [`ClosedGroup`] aggregation state rather than
//! emitted rows. [`ShardedEngine::finish`] folds all shards' groups into
//! one `BTreeMap` keyed by `(bucket, key)` — merging states that met the
//! same group on different shards — and only then evaluates each group at
//! its bucket end, producing rows in the same (bucket, key) order as the
//! single-threaded engine.
//!
//! ## Routing
//!
//! [`ShardBy::Key`] (the default) sends every tuple of a group to the
//! same shard, so group states never split and results are *identical*
//! to the single-threaded engine for every aggregator — this is the mode
//! the equivalence tests pin down. [`ShardBy::RoundRobin`] spreads each
//! group across all shards and relies on the merge path; it matches the
//! single-threaded engine exactly for the exactly-mergeable aggregates
//! (counts, sums — Theorem 1 state is a pair of scalars that add), and
//! within approximation bounds for the sketch/sampler summaries.
//!
//! ## Supervision and recovery
//!
//! Each worker periodically serializes its whole engine into a shared
//! [`CheckpointSlot`] ([`Engine::checkpoint`] — forward decay's frozen
//! numerators make the snapshot plain data, exact to the bit). The
//! dispatcher retains the short tail of messages since the last
//! checkpoint. When a send fails (the worker panicked), the supervisor
//! respawns the worker from the checkpoint with exponential backoff and
//! replays the tail, after which the run continues **byte-identically**:
//! the restored LFTA slots sit in their exact old positions, so every
//! future fold/evict/flush — and every floating-point combination order —
//! is unchanged. A shard that exhausts its restart budget (a poison-pill
//! input, say) is *degraded*: later tuples routed to it are counted
//! dropped, and its last checkpoint is still salvaged into the final
//! result at [`ShardedEngine::finish`]. Every recovery action is
//! observable in [`EngineTelemetry`]: `restarts`, `checkpoints`,
//! `replayed_batches` / `replayed_tuples`, `degraded_shards`,
//! `dropped_degraded`.
//!
//! Supervision is on by default
//! ([`DEFAULT_CHECKPOINT_EVERY`](crate::supervisor::DEFAULT_CHECKPOINT_EVERY)
//! tuples between checkpoints); [`ShardedEngine::checkpoint_every`] tunes
//! the interval, and `0` disables the whole layer — no checkpoints, no
//! backlog, and a dead worker is a hard error again
//! ([`fd_core::Error::WorkerLost`]), the pre-supervision behavior.
//! Queries whose aggregators cannot serialize (the samplers) flag their
//! slot unsupported on the first attempt and likewise fall back to
//! fail-hard-on-death, degrading instead of erroring.

use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::AtomicBool;
use std::sync::atomic::Ordering::Relaxed;
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::durability::{
    recover, CommitState, DurabilityOptions, DurableSink, ProducerCommit, RecoveryReport, ReplayMsg,
};
use crate::engine::{ClosedGroup, Engine, EngineStats, Row, StreamEvent};
use crate::fault::{FaultKind, FaultState};
use crate::io::{FaultyFs, IoBackend};
use crate::overload::{DrainReport, OverloadConfig, ScaleColumn, ShedPolicy, Subsampler};
use crate::spsc::{ring, ring_fabric, BatchPool, Capacity, RingReceiver, RingSender, SendError};
use crate::supervisor::{
    backoff, CheckpointSlot, SupervisorConfig, WorkerLease, DEFAULT_MAX_RESTARTS,
};
use crate::telemetry::EngineTelemetry;
use crate::tuple::{secs, Micros, Packet, Proto};
use crate::udaf::{Aggregator, Query};

/// How the dispatcher assigns accepted tuples to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardBy {
    /// Hash of the group key: each group lives wholly on one shard, so
    /// sharded results are identical to the single-threaded engine for
    /// every aggregator.
    #[default]
    Key,
    /// Strict rotation: each group's state splits across all shards and
    /// is re-assembled by merging — the paper's distributed-computation
    /// scenario. Exact for additively-mergeable aggregates (count/sum),
    /// approximate within summary guarantees otherwise.
    RoundRobin,
}

/// Messages from the dispatcher to a worker, sequence-numbered per shard
/// (1-based; a [`CheckpointSlot`] stores the seq it covers, `0` meaning
/// "none yet"). Batches travel behind an `Arc` so the supervision backlog
/// retains them without copying packets; in unsupervised mode the worker
/// holds the only reference and recycles the buffer exactly as before.
/// Batches also carry their send instant so the worker can report
/// dispatch-to-apply latency.
///
/// The multi-producer ingress fabric reuses `Batch` as its *epoch*
/// message: one per (producer, shard) per sealed epoch, possibly with an
/// empty packet slice, carrying the producer's admission watermark in
/// `wm`. The single-dispatcher path always sends `wm: 0` (its watermark
/// travels as explicit `Punctuate` messages, unchanged).
#[derive(Clone)]
enum Msg {
    Batch {
        seq: u64,
        pkts: Arc<Vec<Packet>>,
        /// Horvitz–Thompson scale column from subsample shedding, pairing
        /// each packet with its 1/p reweighting factor (`None` = all ones,
        /// the only value outside `ShedPolicy::Subsample`).
        scales: ScaleColumn,
        wm: Micros,
        sent: Instant,
    },
    Punctuate {
        seq: u64,
        wm: Micros,
    },
}

impl Msg {
    fn seq(&self) -> u64 {
        match self {
            Msg::Batch { seq, .. } | Msg::Punctuate { seq, .. } => *seq,
        }
    }
}

/// Supervision state for one shard.
struct Seat {
    /// Messages since the last checkpoint, retained for replay. Stays
    /// empty in unsupervised mode and once a slot reports unsupported.
    ///
    /// Shared with the live worker: the dispatcher pushes a clone of each
    /// message before sending it (one short lock on the hot path), and the
    /// worker — not the dispatcher — trims covered entries right after
    /// each checkpoint it publishes, recycling their batch buffers. That
    /// keeps the reclaim scan, the `Arc` teardown and the pool pushes off
    /// the dispatch path, on a thread that overlaps it whenever a spare
    /// core exists. The deque itself outlives the worker (it hangs off
    /// the seat), so replay after a crash reads it exactly as before.
    backlog: Arc<Mutex<VecDeque<Msg>>>,
    /// Next sequence number to assign.
    next_seq: u64,
    /// The worker's checkpoint slot (shared across its incarnations).
    slot: Arc<CheckpointSlot>,
    /// Restarts consumed so far, cumulative for the run.
    restarts: u32,
    degraded: bool,
    /// The live worker incarnation's progress lease — the stuck-shard
    /// watchdog's ground truth, replaced wholesale on every respawn.
    lease: Arc<WorkerLease>,
    /// Defensive stash for a worker that exited *cleanly* while being
    /// reaped — not expected (a worker only exits when its channel
    /// closes), but its state must not be silently dropped if it happens.
    early_exit: Option<(Vec<ClosedGroup>, EngineStats)>,
}

impl Seat {
    fn new() -> Self {
        Self {
            backlog: Arc::new(Mutex::new(VecDeque::new())),
            next_seq: 1,
            slot: Arc::new(CheckpointSlot::default()),
            restarts: 0,
            degraded: false,
            lease: Arc::new(WorkerLease::default()),
            early_exit: None,
        }
    }
}

/// Per-shard ring depth (in batches) before the dispatcher blocks. Deep
/// enough that a worker pausing to serialize a checkpoint (~1 ms on the
/// fig2 workload) drains queued batches afterwards instead of stalling
/// the dispatcher.
const CHANNEL_DEPTH: usize = 32;
/// Default tuples buffered per shard before an automatic ring send;
/// override with [`ShardedEngine::batch_size`] (CLI: `--batch`).
pub const DEFAULT_BATCH_SIZE: usize = 1024;

/// Applies one batch to the shard engine, firing any armed panic fault at
/// its exact tuple position. The position is the engine's cumulative
/// accepted-tuple count (`tuples_in`), which is checkpointed — so "tuple
/// N" names the same logical tuple across restarts and replays, however
/// the stream was batched.
fn apply_batch(
    engine: &mut Engine,
    pkts: &[Packet],
    scales: Option<&[f64]>,
    fault: Option<&FaultState>,
    shard: usize,
) {
    if let Some(sc) = scales {
        debug_assert_eq!(sc.len(), pkts.len(), "scale column out of step");
    }
    let trigger = fault.and_then(|f| match f.plan.kind {
        FaultKind::PanicAtTuple(n) => Some((f, n, true)),
        FaultKind::PoisonedBatch(n) => Some((f, n, false)),
        // Disk faults live in the durability layer's I/O backend; slow and
        // wedge faults fire in the worker loop, before apply.
        FaultKind::SlowShard(_) | FaultKind::WedgeAtTuple(_) | FaultKind::Disk(_) => None,
    });
    match trigger {
        None => match scales {
            None => {
                for p in pkts {
                    engine.process(p);
                }
            }
            Some(sc) => {
                for (p, &s) in pkts.iter().zip(sc) {
                    engine.process_scaled(p, s);
                }
            }
        },
        Some((f, n, transient)) => {
            for (i, p) in pkts.iter().enumerate() {
                if engine.stats().tuples_in + 1 >= n {
                    // A transient fault disarms *before* panicking, so the
                    // respawned worker replays past this point.
                    if transient {
                        f.disarm();
                    }
                    panic!("injected fault: shard {shard} worker dies at tuple {n}");
                }
                match scales {
                    None => engine.process(p),
                    Some(sc) => engine.process_scaled(p, sc[i]),
                }
            }
        }
    }
}

/// A shard worker's join handle: the worker returns its closed groups and
/// end-of-run stats when the channel drains.
type WorkerHandle = JoinHandle<(Vec<ClosedGroup>, EngineStats)>;

/// Spawns one shard worker around a ready engine (fresh at start-up,
/// checkpoint-restored on respawn).
#[allow(clippy::too_many_arguments)]
fn spawn_worker(
    shard: usize,
    mut engine: Engine,
    rx: RingReceiver<Msg>,
    registry: Arc<EngineTelemetry>,
    recycle: BatchPool<Packet>,
    config: Arc<SupervisorConfig>,
    slot: Arc<CheckpointSlot>,
    backlog: Arc<Mutex<VecDeque<Msg>>>,
    fault: Arc<Mutex<Option<Arc<FaultState>>>>,
    lease: Arc<WorkerLease>,
) -> WorkerHandle {
    std::thread::Builder::new()
        .name(format!("fd-shard-{shard}"))
        .spawn(move || {
            let tel = &registry.shards()[shard];
            let n_shards = registry.shards().len().max(1);
            // Tuple-equivalents applied since the last checkpoint
            // (punctuations count 1, so an idle shard's backlog stays
            // bounded too).
            let mut since_ckpt = 0u64;
            // Shard-by-key balances load well enough that without an
            // offset every worker hits its checkpoint threshold in the
            // same instant and all shards stall together — which stalls
            // the dispatcher. Staggering the *first* interval spreads the
            // serialization pauses across the whole window.
            let mut staggered = false;
            // The snapshot buffer displaced from the slot by each store,
            // recycled into the next serialization so steady-state
            // checkpointing stops allocating.
            let mut spare: Vec<u8> = Vec::new();
            while let Some(msg) = rx.recv() {
                // A retired incarnation (the watchdog abandoned it) must
                // make no further observable moves: its messages have been
                // replayed to the fresh incarnation, whose applies, gauge
                // updates and checkpoint stores are the live ones now.
                if lease.retired() {
                    return (Vec::new(), engine.stats());
                }
                let live = registry.enabled();
                let active_fault = fault
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .clone()
                    .filter(|f| f.plan.shard == shard && f.armed());
                let seq = msg.seq();
                match msg {
                    Msg::Batch {
                        pkts, scales, sent, ..
                    } => {
                        match active_fault.as_ref().map(|f| f.plan.kind) {
                            Some(FaultKind::SlowShard(d)) => std::thread::sleep(d),
                            Some(FaultKind::WedgeAtTuple(n))
                                if engine.stats().tuples_in + pkts.len() as u64 >= n =>
                            {
                                // Wedge: stop consuming without crashing, so
                                // supervision's panic path never fires — only
                                // the watchdog can notice. Disarm first
                                // (transient), then spin until the watchdog
                                // retires this incarnation. The triggering
                                // batch is NOT applied; it replays to the
                                // fresh incarnation.
                                if let Some(f) = active_fault.as_deref() {
                                    f.disarm();
                                }
                                while !lease.retired() {
                                    std::thread::sleep(Duration::from_millis(1));
                                }
                                return (Vec::new(), engine.stats());
                            }
                            _ => {}
                        }
                        let sc = scales.as_deref().map(|v| v.as_slice());
                        if live {
                            let t0 = Instant::now();
                            apply_batch(&mut engine, &pkts, sc, active_fault.as_deref(), shard);
                            tel.batch_ns.record(t0.elapsed().as_nanos() as u64);
                            tel.dispatch_lag_ns.record(sent.elapsed().as_nanos() as u64);
                            tel.tuples_processed.fetch_add(pkts.len() as u64, Relaxed);
                        } else {
                            apply_batch(&mut engine, &pkts, sc, active_fault.as_deref(), shard);
                        }
                        since_ckpt += pkts.len() as u64;
                        // Sole owner ⇒ unsupervised mode: hand the drained
                        // buffer back for reuse, exactly as before. Under
                        // supervision the backlog clone wins and the
                        // buffer is reclaimed by the post-checkpoint trim
                        // below.
                        if let Ok(buf) = Arc::try_unwrap(pkts) {
                            recycle.put(buf);
                        }
                    }
                    Msg::Punctuate { wm, .. } => {
                        engine.punctuate(wm);
                        if live {
                            tel.applied_watermark.store(wm, Relaxed);
                            tel.lfta_evictions
                                .store(engine.stats().lfta_evictions, Relaxed);
                            if let Some(occ) = engine.lfta_occupancy() {
                                tel.lfta_occupancy.store(occ as u64, Relaxed);
                            }
                        }
                        since_ckpt += 1;
                    }
                }
                lease.record_progress(seq);
                // Retired mid-apply (the watchdog just abandoned us): the
                // fresh incarnation owns the checkpoint slot and the queue
                // gauge from here on, so exit before touching either.
                if lease.retired() {
                    return (Vec::new(), engine.stats());
                }
                // Checkpoint at message boundaries: the snapshot then means
                // exactly "everything up to seq applied", which is what
                // backlog trimming and replay key on. The buffer handed
                // back above happens-before the seq store, so a trimmed
                // batch is never still referenced by the worker.
                let every = config.checkpoint_every.load(Relaxed);
                if !staggered && every > 0 {
                    since_ckpt += shard as u64 * every / n_shards as u64;
                    staggered = true;
                }
                if every > 0 && since_ckpt >= every && !slot.unsupported() {
                    let ckpt_start = crate::telemetry::thread_cpu_ns();
                    let mut blob = std::mem::take(&mut spare);
                    match engine.checkpoint_into(&mut blob) {
                        Ok(()) => {
                            spare = slot.store(seq, blob).unwrap_or_default();
                            registry.checkpoints.fetch_add(1, Relaxed);
                            let spent =
                                crate::telemetry::thread_cpu_ns().saturating_sub(ckpt_start);
                            registry.checkpoint_ns.fetch_add(spent, Relaxed);
                            since_ckpt = 0;
                            // Trim the replay backlog: everything up to
                            // `seq` is inside the snapshot just published.
                            // Running this here — not on the dispatcher —
                            // keeps the reclaim scan, the `Arc` teardown
                            // and the pool pushes off the dispatch path.
                            // Buffers are handed back outside the lock so
                            // the dispatcher's concurrent push never waits
                            // on the pool mutex.
                            let mut covered = Vec::new();
                            {
                                let mut log =
                                    backlog.lock().unwrap_or_else(PoisonError::into_inner);
                                while log.front().is_some_and(|m| m.seq() <= seq) {
                                    if let Some(Msg::Batch { pkts, .. }) = log.pop_front() {
                                        covered.push(pkts);
                                    }
                                }
                            }
                            for pkts in covered {
                                if let Ok(buf) = Arc::try_unwrap(pkts) {
                                    recycle.put(buf);
                                }
                            }
                        }
                        // Failure is permanent (the aggregate can't
                        // serialize): flag it so the dispatcher stops
                        // retaining backlog and degrades on death.
                        Err(_) => slot.mark_unsupported(),
                    }
                }
                tel.queue_depth.fetch_sub(1, Relaxed);
            }
            // Channel closed: end of stream.
            let state = engine.finish_state();
            (state, engine.stats())
        })
        .expect("spawn shard worker")
}

/// Per-(producer, shard) ring depth of the multi-producer ingress fabric.
/// Shallower than the single-dispatcher ring ([`CHANNEL_DEPTH`]): each
/// shard worker drains its `P` rings in strict rotation, so a producer
/// can only ever run this many epochs ahead of the slowest producer —
/// deep enough to absorb scheduling jitter, shallow enough to bound the
/// memory pinned by `P × N` rings.
pub const FABRIC_RING_DEPTH: usize = 8;

/// Maps a group key to a shard: Fibonacci hash (multiply by 2⁶⁴/φ), then
/// multiply-shift fold of the HIGH bits. `h % n` would read the low bits,
/// which stay skewed for power-of-two-strided keys; the high bits are
/// well mixed for dense and strided keys alike (pinned by
/// `key_routing_spreads_within_bound`). Shared by the single dispatcher
/// and every fabric ingress handle, so keyed routing is identical in both
/// modes.
#[inline]
fn route_key(key: u64, n_shards: usize) -> usize {
    let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    ((u128::from(h) * n_shards as u128) >> 64) as usize
}

/// Recovery state of one fabric shard, behind its own mutex so a
/// recovering handle never blocks senders of *other* shards. The sender
/// slots live OUTSIDE this lock (see [`FabShard::senders`]) because a
/// send can block on a full ring; recovery must be able to run while
/// other handles are parked in `send`.
struct FabInner {
    worker: Option<WorkerHandle>,
    /// Restarts consumed so far, cumulative for the run.
    restarts: u32,
    /// Bumped at the start of every recovery (successful or degrading),
    /// while `inner` is held across the whole reap + replay +
    /// fresh-sender install. Each installed sender is stamped with the
    /// generation it belongs to, and a handle observes the generation
    /// *atomically with its backlog push* (both under `inner`), so for
    /// any send exactly one of two things is true: the push preceded the
    /// recovery — the replay delivered the message and the stamp check
    /// in [`FabShared::send`] refuses the now-duplicate direct send — or
    /// it followed it, in which case the replay never saw the message
    /// and the fresh sender's stamp matches the observed generation.
    /// A handle whose send failed (or was refused) re-reads the
    /// generation under `inner`: if it moved, another handle already
    /// recovered and replayed the backlog, so it must NOT recover again.
    generation: u64,
    /// Producers whose handles have finished (their rings are closed).
    /// A respawn closes these producers' fresh rings immediately so the
    /// new worker's rotation skips them exactly like the old one did.
    finished: Vec<bool>,
    /// The live worker incarnation's progress lease (watchdog state),
    /// replaced wholesale on every respawn.
    lease: Arc<WorkerLease>,
    /// Abandoned (wedged) incarnations, joined at finish/drop once they
    /// observe their retired lease (see [`reap_zombies`]).
    zombies: Vec<WorkerHandle>,
    /// Defensive stash for a worker that exited cleanly while being
    /// reaped (see [`Seat::early_exit`]).
    early_exit: Option<(Vec<ClosedGroup>, EngineStats)>,
}

/// One producer's sender slot on one fabric shard: the ring sender,
/// stamped with the [`FabInner::generation`] it was installed under.
type SenderSlot = Mutex<Option<(u64, RingSender<Msg>)>>;

/// One shard of the ingress fabric: the per-producer replay backlogs, the
/// checkpoint slot shared across worker incarnations, and one sender slot
/// per producer.
struct FabShard {
    /// Per-producer backlog rows of messages since the last checkpoint.
    /// Each row is FIFO in that producer's (strictly increasing) seq;
    /// rows are merged by seq for replay. One mutex for all rows — pushes
    /// and trims are brief, and a single lock keeps trim atomic.
    backlogs: Mutex<Vec<VecDeque<Msg>>>,
    /// The worker's checkpoint slot (shared across its incarnations).
    slot: Arc<CheckpointSlot>,
    /// Per-producer sender slots, each stamped with the
    /// [`FabInner::generation`] it was installed under: a send refuses a
    /// sender from a different generation than the one it observed at
    /// backlog-push time, because that recovery's replay already
    /// delivered the pushed message. Outside [`FabShard::inner`]: a
    /// sender blocked on a full ring holds only its own slot's lock, so
    /// recovery (under `inner`) can proceed — the blocked send fails as
    /// soon as the dead worker's receiver drops, releasing the slot for
    /// the recoverer to install a fresh sender into.
    senders: Vec<SenderSlot>,
    inner: Mutex<FabInner>,
    /// Checked (cheaply) by every handle before sending; set under
    /// `inner` when the restart budget is exhausted.
    degraded: AtomicBool,
}

/// Everything the `P` ingress handles and `N` fabric workers share.
///
/// ## The producer-seq determinism rule
///
/// Every sealed epoch ships exactly one [`Msg::Batch`] to **every**
/// shard (possibly empty, always carrying the producer's watermark), and
/// epochs must be dealt to producers in strict round-robin order starting
/// at producer 0. Producer `p`'s `k`-th epoch then has the per-shard
/// sequence number `k·P + p + 1`: the per-shard message stream is
/// *globally* ordered — `seq ≡ producer (mod P)`, consecutive seqs are
/// consecutive epochs — and each worker drains its rings in fixed
/// rotation, applying messages in exactly this seq order. Dealing a
/// stream round-robin in chunks across the handles therefore reproduces
/// the original per-shard apply order bit for bit, and one number
/// subsumes the `(producer, seq)` pair everywhere downstream: backlog
/// trim, checkpoint coverage, WAL contiguity and crash recovery all key
/// on the same per-shard seq the single-dispatcher path already uses.
struct FabShared {
    producers: usize,
    shards: Vec<FabShard>,
    telemetry: Arc<EngineTelemetry>,
    config: Arc<SupervisorConfig>,
    fault: Arc<Mutex<Option<Arc<FaultState>>>>,
    /// The per-worker query (selection stripped), for checkpoint restore.
    worker_query: Query,
    /// Per-producer batch pools (pool sharding): handles never contend on
    /// a shared free list, and total pooled capacity scales with
    /// `producers × shards`.
    pools: Vec<BatchPool<Packet>>,
    max_restarts: u32,
    /// The overload control plane (send deadlines, shed policy, watchdog
    /// lease), shared by every handle's seal path and [`FabShared::send`].
    overload: OverloadConfig,
    /// Handle end-of-run stats, one slot per producer, written by
    /// [`IngressHandle::finish`] and folded by [`ShardedEngine::finish`].
    stats_out: Mutex<Vec<Option<EngineStats>>>,
}

impl FabShared {
    fn supervising(&self) -> bool {
        self.config.checkpoint_every.load(Relaxed) > 0
    }

    /// Ships one epoch message from producer `p` to `shard`, retaining it
    /// in the backlog and running the recovery protocol if the send finds
    /// the worker dead. Mirrors the single dispatcher's
    /// [`ShardedEngine::dispatch`], made safe for concurrent callers.
    fn send(self: &Arc<Self>, shard: usize, p: usize, msg: Msg) -> Result<(), fd_core::Error> {
        let sh = &self.shards[shard];
        if sh.degraded.load(Relaxed) {
            if let Msg::Batch { pkts, .. } = &msg {
                self.telemetry
                    .dropped_degraded
                    .fetch_add(pkts.len() as u64, Relaxed);
            }
            return Ok(());
        }
        // Observe the generation and push into the backlog as one atomic
        // step with respect to recovery, which holds `inner` across its
        // whole reap + backlog replay + fresh-sender install + generation
        // bump. Either the push lands before the recovery — its replay
        // delivers the message, and the stamp check below refuses the
        // now-duplicate direct send — or after it, in which case the
        // replay never saw the message and the fresh sender's stamp
        // matches. Splitting the two (push, then read) would let a
        // recovery slip in between and both replay the message AND leave
        // a fresh sender the direct send succeeds against: duplicate
        // delivery.
        let gen = {
            let inner = sh.inner.lock().unwrap_or_else(PoisonError::into_inner);
            if self.supervising() && !sh.slot.unsupported() {
                sh.backlogs.lock().unwrap_or_else(PoisonError::into_inner)[p]
                    .push_back(msg.clone());
            }
            inner.generation
        };
        let tel = &self.telemetry.shards()[shard];
        tel.batches_sent.fetch_add(1, Relaxed);
        tel.queue_depth.fetch_add(1, Relaxed);
        self.telemetry.producers()[p].ring_depth[shard].fetch_add(1, Relaxed);
        enum Attempt {
            Sent,
            Dead,
            Full,
        }
        let deadline = self.overload.send_deadline;
        let mut pending = Some(msg);
        let sent = loop {
            let attempt = {
                let slot = sh.senders[p].lock().unwrap_or_else(PoisonError::into_inner);
                match slot.as_ref() {
                    // A sender from another generation was installed by a
                    // recovery whose replay already delivered the message
                    // pushed above — refuse it rather than send a duplicate.
                    Some((stamp, tx)) if *stamp == gen => {
                        match tx.send_deadline(pending.take().expect("message pending"), deadline) {
                            Ok(()) => Attempt::Sent,
                            Err(SendError::Closed(_)) => Attempt::Dead,
                            Err(SendError::Full(m)) => {
                                pending = Some(m);
                                Attempt::Full
                            }
                        }
                    }
                    _ => Attempt::Dead,
                }
            };
            match attempt {
                Attempt::Sent => break true,
                Attempt::Dead => break false,
                Attempt::Full => {
                    // Ring still full after a whole deadline. Releasing the
                    // slot lock between attempts is what lets a wedge
                    // recovery install a fresh sender: a wedged (not dead)
                    // worker never drops its receiver, so a send that held
                    // the lock while blocking would deadlock the recovery.
                    let mut inner = sh.inner.lock().unwrap_or_else(PoisonError::into_inner);
                    if inner.generation != gen {
                        // Another handle recovered the shard meanwhile; its
                        // replay (which ran after our backlog push above)
                        // delivered the message.
                        break true;
                    }
                    if self.supervising()
                        && !sh.slot.unsupported()
                        && inner.lease.is_stale(self.overload.lease)
                    {
                        eprintln!(
                            "fd-shard-{shard}: worker wedged (no heartbeat for {:?}); respawning",
                            inner.lease.stale_for()
                        );
                        self.recover_wedged_locked(shard, &mut inner);
                        // The recovery's replay delivered (or its degrade
                        // counted) the message pushed to the backlog above.
                        break true;
                    }
                    // A slow — not wedged — worker: keep waiting. Lossy
                    // fabric policies shed whole epochs at seal time,
                    // before the backlog push; past this point the message
                    // must be delivered or replayed.
                }
            }
        };
        if sent {
            return Ok(());
        }
        // A send fails (or is refused) only if the worker died at some
        // point — i.e. it panicked.
        if !self.supervising() {
            return Err(fd_core::Error::WorkerLost { shard });
        }
        let mut inner = sh.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if inner.generation == gen {
            // First handle to notice: run the recovery. The message is in
            // the backlog, so the respawn's replay delivers it.
            self.recover_locked(shard, &mut inner);
        }
        // Otherwise another handle recovered (or degraded) the shard
        // while we were trying; its replay ran after our backlog push, so
        // the message is already delivered or counted — never resend.
        Ok(())
    }

    /// Reaps the dead worker and restarts it from its checkpoint with
    /// exponential backoff, degrading the shard when the budget is
    /// exhausted. Caller holds `inner`. Always bumps the generation —
    /// up front, so the senders [`respawn_locked`](Self::respawn_locked)
    /// installs carry the generation this recovery publishes.
    fn recover_locked(self: &Arc<Self>, shard: usize, inner: &mut FabInner) {
        inner.generation += 1;
        self.reap_locked(shard, inner);
        self.restart_or_degrade_locked(shard, inner);
    }

    /// Wedge recovery: abandons an unresponsive — but alive — worker and
    /// restarts the shard through the same bounded-budget path as a
    /// crashed one. Safe Rust cannot kill a thread, so the old incarnation
    /// is retired (its lease goes sticky-dead) and parked in
    /// [`FabInner::zombies`]; if it ever unwedges it observes the retired
    /// lease and exits without side effects. Caller holds `inner`; the
    /// generation bump makes every in-flight send against the old rings
    /// refuse or re-route exactly as for a crash recovery.
    fn recover_wedged_locked(self: &Arc<Self>, shard: usize, inner: &mut FabInner) {
        inner.generation += 1;
        inner.lease.retire();
        if let Some(handle) = inner.worker.take() {
            if handle.is_finished() {
                let _ = handle.join();
            } else {
                inner.zombies.push(handle);
            }
        }
        self.telemetry.wedged_respawns.fetch_add(1, Relaxed);
        self.restart_or_degrade_locked(shard, inner);
    }

    /// The bounded-restart tail shared by crash and wedge recovery:
    /// respawn from the checkpoint with exponential backoff, degrading the
    /// shard when the budget is exhausted. Caller holds `inner` and has
    /// already bumped the generation and disposed of the old worker.
    fn restart_or_degrade_locked(self: &Arc<Self>, shard: usize, inner: &mut FabInner) {
        let sh = &self.shards[shard];
        let mut restored = false;
        if !sh.slot.unsupported() {
            while inner.restarts < self.max_restarts {
                let attempt = inner.restarts;
                inner.restarts += 1;
                self.telemetry.restarts.fetch_add(1, Relaxed);
                std::thread::sleep(backoff(attempt));
                if self.respawn_locked(shard, inner) {
                    restored = true;
                    break;
                }
                // The replay killed the fresh worker (a permanent fault):
                // reap it and spend another restart.
                self.reap_locked(shard, inner);
            }
        }
        if !restored {
            self.degrade_locked(shard, inner);
        }
    }

    /// Depth of producer `p`'s ring to `shard` (0 when the sender is
    /// gone). A seal-time lag probe, racy by nature — the worker drains
    /// concurrently — but monotone enough for a shed decision.
    fn ring_len(&self, shard: usize, p: usize) -> usize {
        self.shards[shard].senders[p]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .as_ref()
            .map_or(0, |(_, tx)| tx.len())
    }

    /// Waits up to `deadline` for capacity on producer `p`'s ring to
    /// `shard`. Sole-producer soundness holds — only handle `p` sends on
    /// this ring, so `Ready` means the next send will not block.
    fn ring_capacity(&self, shard: usize, p: usize, deadline: Duration) -> Capacity {
        let slot = self.shards[shard].senders[p]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        match slot.as_ref() {
            Some((_, tx)) => tx.wait_capacity(deadline),
            None => Capacity::Closed,
        }
    }

    /// Joins a dead worker's thread, recording its panic.
    fn reap_locked(&self, shard: usize, inner: &mut FabInner) {
        if let Some(handle) = inner.worker.take() {
            match handle.join() {
                Ok(state) => inner.early_exit = Some(state),
                Err(payload) => {
                    self.telemetry.worker_panics.fetch_add(1, Relaxed);
                    eprintln!(
                        "fd-shard-{shard}: worker panicked: {}",
                        panic_message(&payload)
                    );
                }
            }
        }
    }

    /// Restores an engine from the shard's checkpoint, spawns a new
    /// worker on fresh rings, replays the backlog tail in seq order, and
    /// installs the fresh senders (closing finished producers' rings).
    /// Caller holds `inner`; other handles' sends fail against the old
    /// rings and park on `inner` until the new generation is published.
    fn respawn_locked(self: &Arc<Self>, shard: usize, inner: &mut FabInner) -> bool {
        let sh = &self.shards[shard];
        let (ckpt_seq, engine) = match sh.slot.load() {
            Some((seq, bytes)) => match Engine::restore(self.worker_query.clone(), &bytes) {
                Ok(e) => (seq, e),
                Err(err) => {
                    eprintln!("fd-shard-{shard}: checkpoint restore failed: {err:?}");
                    return false;
                }
            },
            None => {
                let mut e = Engine::new(self.worker_query.clone());
                e.keep_closed_state();
                (0, e)
            }
        };
        let p_count = self.producers;
        let mut txs = Vec::with_capacity(p_count);
        let mut rxs = Vec::with_capacity(p_count);
        for _ in 0..p_count {
            let (tx, rx) = ring::<Msg>(FABRIC_RING_DEPTH);
            txs.push(tx);
            rxs.push(rx);
        }
        // A fresh incarnation gets a fresh lease: the old one stays
        // retired forever (any zombie still holding it keeps seeing
        // `retired() == true`), and the watchdog clock restarts from now.
        inner.lease = Arc::new(WorkerLease::default());
        inner.worker = Some(spawn_fabric_worker(
            shard,
            engine,
            rxs,
            Arc::clone(self),
            ckpt_seq,
            Arc::clone(&inner.lease),
        ));
        let tel = &self.telemetry.shards()[shard];
        tel.queue_depth.store(0, Relaxed);
        for p in 0..p_count {
            self.telemetry.producers()[p].ring_depth[shard].store(0, Relaxed);
        }
        // Replay the uncheckpointed tail: merge the per-producer backlog
        // rows by seq (each row is already FIFO) and push in that order —
        // the exact order the worker's rotation drains, so a bounded ring
        // can never deadlock the refill.
        let mut replay: Vec<Msg> = {
            let rows = sh.backlogs.lock().unwrap_or_else(PoisonError::into_inner);
            rows.iter()
                .flat_map(|row| row.iter().filter(|m| m.seq() > ckpt_seq).cloned())
                .collect()
        };
        replay.sort_by_key(Msg::seq);
        for msg in replay {
            let p = ((msg.seq() - 1) % p_count as u64) as usize;
            if let Msg::Batch { pkts, .. } = &msg {
                self.telemetry.replayed_batches.fetch_add(1, Relaxed);
                self.telemetry
                    .replayed_tuples
                    .fetch_add(pkts.len() as u64, Relaxed);
            }
            tel.queue_depth.fetch_add(1, Relaxed);
            self.telemetry.producers()[p].ring_depth[shard].fetch_add(1, Relaxed);
            if txs[p].send(msg).is_err() {
                return false;
            }
        }
        // Only now are the fresh rings reachable by other handles,
        // stamped with the current generation (bumped by recover_locked
        // before calling in; unchanged on the durable-resume path). A
        // finished producer can never close its ring again, so close it
        // here on its behalf.
        for (p, tx) in txs.into_iter().enumerate() {
            let mut slot = sh.senders[p].lock().unwrap_or_else(PoisonError::into_inner);
            *slot = if inner.finished[p] {
                None
            } else {
                Some((inner.generation, tx))
            };
        }
        true
    }

    /// Gives up on a shard: closes its rings, drains its backlogs
    /// (counting the tuples as degraded drops), and marks it so later
    /// epochs are counted instead of sent. Its last checkpoint is still
    /// salvaged at [`ShardedEngine::finish`]. Caller holds `inner`.
    fn degrade_locked(&self, shard: usize, inner: &mut FabInner) {
        let sh = &self.shards[shard];
        sh.degraded.store(true, Relaxed);
        self.telemetry.degraded_shards.fetch_add(1, Relaxed);
        for slot in &sh.senders {
            *slot.lock().unwrap_or_else(PoisonError::into_inner) = None;
        }
        self.reap_locked(shard, inner);
        let rows: Vec<VecDeque<Msg>> = {
            let mut rows = sh.backlogs.lock().unwrap_or_else(PoisonError::into_inner);
            rows.iter_mut().map(std::mem::take).collect()
        };
        let mut dropped = 0u64;
        for (p, row) in rows.into_iter().enumerate() {
            for msg in row {
                if let Msg::Batch { pkts, .. } = msg {
                    dropped += pkts.len() as u64;
                    if let Ok(buf) = Arc::try_unwrap(pkts) {
                        self.pools[p].put(buf);
                    }
                }
            }
            self.telemetry.producers()[p].ring_depth[shard].store(0, Relaxed);
        }
        self.telemetry.dropped_degraded.fetch_add(dropped, Relaxed);
        self.telemetry.shards()[shard].queue_depth.store(0, Relaxed);
    }
}

/// Spawns one fabric shard worker: drains its `P` dedicated rings in
/// strict producer rotation (seq order — see the determinism rule on
/// [`FabShared`]), folds each epoch's batch, advances the
/// min-across-producers watermark frontier, and checkpoints exactly like
/// the single-dispatcher worker. `start_seq` is the last applied seq (0
/// fresh; the checkpoint's seq on respawn), which determines where the
/// rotation resumes: the producer owning `start_seq + 1`.
fn spawn_fabric_worker(
    shard: usize,
    mut engine: Engine,
    rxs: Vec<RingReceiver<Msg>>,
    fab: Arc<FabShared>,
    start_seq: u64,
    lease: Arc<WorkerLease>,
) -> WorkerHandle {
    std::thread::Builder::new()
        .name(format!("fd-shard-{shard}"))
        .spawn(move || {
            let registry = Arc::clone(&fab.telemetry);
            let tel = &registry.shards()[shard];
            let n_shards = registry.shards().len().max(1);
            let p_count = fab.producers;
            let mut cursor = (start_seq % p_count as u64) as usize;
            let mut last_seq = start_seq;
            let mut open = vec![true; p_count];
            // Per-producer watermarks feeding the frontier. A closed
            // producer's entry is raised to MAX so it stops gating the
            // frontier; `Micros::MAX` never wins the min while any
            // producer is live, and an all-closed shard just exits.
            let mut prod_wm: Vec<Micros> = vec![0; p_count];
            let mut frontier_applied: Micros = 0;
            let mut since_ckpt = 0u64;
            let mut staggered = false;
            let mut spare: Vec<u8> = Vec::new();
            while open.iter().any(|&o| o) {
                if !open[cursor] {
                    cursor = (cursor + 1) % p_count;
                    continue;
                }
                let Some(msg) = rxs[cursor].recv() else {
                    // The producer finished (or recovery closed its ring
                    // on its behalf): remove it from the rotation.
                    open[cursor] = false;
                    prod_wm[cursor] = Micros::MAX;
                    cursor = (cursor + 1) % p_count;
                    continue;
                };
                // Retired (the watchdog abandoned this incarnation): the
                // fresh incarnation replays our messages — exit before
                // making any observable move.
                if lease.retired() {
                    return (Vec::new(), engine.stats());
                }
                let live = registry.enabled();
                let active_fault = fab
                    .fault
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .clone()
                    .filter(|f| f.plan.shard == shard && f.armed());
                let (seq, pkts, scales, wm, sent) = match msg {
                    Msg::Batch {
                        seq,
                        pkts,
                        scales,
                        wm,
                        sent,
                    } => (seq, pkts, scales, wm, sent),
                    // The fabric only ships epoch batches; watermarks ride
                    // inside them.
                    Msg::Punctuate { .. } => unreachable!("fabric rings carry epochs only"),
                };
                debug_assert!(
                    seq > last_seq,
                    "fabric seq went backwards on shard {shard}: {seq} after {last_seq}"
                );
                last_seq = seq;
                match active_fault.as_ref().map(|f| f.plan.kind) {
                    Some(FaultKind::SlowShard(d)) => std::thread::sleep(d),
                    Some(FaultKind::WedgeAtTuple(n))
                        if engine.stats().tuples_in + pkts.len() as u64 >= n =>
                    {
                        // See the single-dispatcher worker: disarm, spin
                        // until retired, exit without applying this batch
                        // (it replays to the fresh incarnation).
                        if let Some(f) = active_fault.as_deref() {
                            f.disarm();
                        }
                        while !lease.retired() {
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        return (Vec::new(), engine.stats());
                    }
                    _ => {}
                }
                let sc = scales.as_deref().map(|v| v.as_slice());
                if live {
                    let t0 = Instant::now();
                    apply_batch(&mut engine, &pkts, sc, active_fault.as_deref(), shard);
                    tel.batch_ns.record(t0.elapsed().as_nanos() as u64);
                    tel.dispatch_lag_ns.record(sent.elapsed().as_nanos() as u64);
                    tel.tuples_processed.fetch_add(pkts.len() as u64, Relaxed);
                } else {
                    apply_batch(&mut engine, &pkts, sc, active_fault.as_deref(), shard);
                }
                // Epochs count their batch plus the embedded watermark as
                // tuple-equivalents, so idle shards still checkpoint.
                since_ckpt += pkts.len() as u64 + 1;
                if !pkts.is_empty() {
                    if let Ok(buf) = Arc::try_unwrap(pkts) {
                        fab.pools[cursor].put(buf);
                    }
                }
                // The frontier is the min watermark across ALL producers:
                // a bucket may only close once no producer can still send
                // tuples for it (PAPER.md §VI-B's per-site merge rule).
                if wm > prod_wm[cursor] {
                    prod_wm[cursor] = wm;
                }
                let frontier = prod_wm.iter().copied().min().unwrap_or(0);
                if frontier > frontier_applied && frontier != Micros::MAX {
                    engine.punctuate(frontier);
                    frontier_applied = frontier;
                    if live {
                        tel.applied_watermark.store(frontier, Relaxed);
                        tel.lfta_evictions
                            .store(engine.stats().lfta_evictions, Relaxed);
                        if let Some(occ) = engine.lfta_occupancy() {
                            tel.lfta_occupancy.store(occ as u64, Relaxed);
                        }
                    }
                }
                lease.record_progress(seq);
                // Retired mid-apply: the fresh incarnation owns the
                // checkpoint slot and the gauges from here on.
                if lease.retired() {
                    return (Vec::new(), engine.stats());
                }
                let every = fab.config.checkpoint_every.load(Relaxed);
                if !staggered && every > 0 {
                    since_ckpt += shard as u64 * every / n_shards as u64;
                    staggered = true;
                }
                if every > 0 && since_ckpt >= every && !fab.shards[shard].slot.unsupported() {
                    let ckpt_start = crate::telemetry::thread_cpu_ns();
                    let mut blob = std::mem::take(&mut spare);
                    match engine.checkpoint_into(&mut blob) {
                        Ok(()) => {
                            spare = fab.shards[shard].slot.store(seq, blob).unwrap_or_default();
                            registry.checkpoints.fetch_add(1, Relaxed);
                            let spent =
                                crate::telemetry::thread_cpu_ns().saturating_sub(ckpt_start);
                            registry.checkpoint_ns.fetch_add(spent, Relaxed);
                            since_ckpt = 0;
                            // Trim every producer's backlog row up to the
                            // covered seq, recycling buffers outside the
                            // lock into each producer's own pool.
                            let mut covered: Vec<(usize, Arc<Vec<Packet>>)> = Vec::new();
                            {
                                let mut rows = fab.shards[shard]
                                    .backlogs
                                    .lock()
                                    .unwrap_or_else(PoisonError::into_inner);
                                for (p, row) in rows.iter_mut().enumerate() {
                                    while row.front().is_some_and(|m| m.seq() <= seq) {
                                        if let Some(Msg::Batch { pkts, .. }) = row.pop_front() {
                                            covered.push((p, pkts));
                                        }
                                    }
                                }
                            }
                            for (p, pkts) in covered {
                                if let Ok(buf) = Arc::try_unwrap(pkts) {
                                    fab.pools[p].put(buf);
                                }
                            }
                        }
                        Err(_) => fab.shards[shard].slot.mark_unsupported(),
                    }
                }
                registry.producers()[cursor].ring_depth[shard].fetch_sub(1, Relaxed);
                tel.queue_depth.fetch_sub(1, Relaxed);
                cursor = (cursor + 1) % p_count;
            }
            (engine.finish_state(), engine.stats())
        })
        .expect("spawn shard worker")
}

/// One producer's share of the multi-producer ingress plane: a full
/// route-and-scatter stage (admission, staging buffers, its own batch
/// pool) that feeds every shard worker through a dedicated SPSC ring.
///
/// Handles come from [`ShardedEngine::take_ingress_handles`] and are
/// `Send` (not `Sync`): move each onto its own ingress thread. Admission
/// (selection, late check, watermark advance) is handle-local — each
/// producer admits against its *own* watermark, the honest semantics of
/// distributed ingress (no producer can observe another's clock; PAPER.md
/// §VI-B). Workers close buckets at the *min* watermark across producers,
/// so a tuple admitted by its handle is never late at its worker. For
/// streams whose disorder stays within the query's slack, every admission
/// decision is identical to the single-dispatcher engine's.
///
/// ## The epoch contract
///
/// Each [`ingest`](Self::ingest) call seals one *epoch*: exactly one
/// message per shard (possibly empty, always carrying the handle's
/// watermark). For deterministic — bit-identical — results, deal input
/// chunks to the handles in round-robin order starting at producer 0:
/// producer `p`'s `k`-th epoch carries the per-shard seq `k·P + p + 1`
/// (see the determinism rule on the fabric), so round-robin dealing makes
/// per-shard seqs dense and the apply order unambiguous. The coordinator
/// mode of [`ShardedEngine`] (handles *not* taken) deals this way
/// automatically.
pub struct IngressHandle {
    producer: usize,
    query: Query,
    routing: ShardBy,
    fab: Arc<FabShared>,
    /// Per-shard staging buffers, swapped against [`Self::pool`] buffers
    /// at each seal.
    staging: Vec<Vec<Packet>>,
    /// Scratch for the vectorized scatter: pass 1 writes one shard index
    /// per tuple (`u32::MAX` = rejected), pass 2 scatters by it.
    shard_of: Vec<u32>,
    /// This producer's pool (a clone of `fab.pools[producer]`).
    pool: BatchPool<Packet>,
    batch_size: usize,
    /// Epochs sealed so far; the next seal ships seq
    /// `epochs · P + producer + 1`.
    epochs: u64,
    /// This producer's decay-aware thinning stage, present only under
    /// [`ShedPolicy::Subsample`].
    subsampler: Option<Subsampler>,
    rr: usize,
    watermark: Micros,
    /// Closed boundary in timestamp space (`closed_below · bucket_micros`).
    closed_low: Micros,
    stats: EngineStats,
    live: bool,
    finished: bool,
}

impl IngressHandle {
    fn new(
        producer: usize,
        query: Query,
        routing: ShardBy,
        batch_size: usize,
        live: bool,
        fab: &Arc<FabShared>,
    ) -> Self {
        let n_shards = fab.shards.len();
        let subsampler = match fab.overload.policy {
            ShedPolicy::Subsample { target_rate } => Some(Subsampler::new(
                fab.overload.decay.clone(),
                query.bucket_micros,
                target_rate,
                fab.overload.seed ^ (producer as u64).wrapping_mul(0xA076_1D64_78BD_642F),
            )),
            _ => None,
        };
        Self {
            producer,
            query,
            routing,
            fab: Arc::clone(fab),
            staging: vec![Vec::new(); n_shards],
            shard_of: Vec::new(),
            pool: fab.pools[producer].clone(),
            batch_size,
            epochs: 0,
            subsampler,
            rr: 0,
            watermark: 0,
            closed_low: 0,
            stats: EngineStats::default(),
            live,
            finished: false,
        }
    }

    /// Admits and scatters one chunk, then seals it as one epoch. See the
    /// epoch contract above for how calls must interleave across handles.
    pub fn ingest(&mut self, pkts: &[Packet]) -> Result<(), fd_core::Error> {
        self.ingest_logged(pkts, None)
    }

    /// [`ingest`](Self::ingest) with an optional WAL hook: the
    /// coordinator passes its durability writer so each shard's epoch is
    /// logged *before* it is sent (write-ahead, same ordering as the
    /// single dispatcher).
    pub(crate) fn ingest_logged(
        &mut self,
        pkts: &[Packet],
        durable: Option<&mut DurableSink>,
    ) -> Result<(), fd_core::Error> {
        self.stage(pkts);
        self.seal_logged(durable)
    }

    /// The batch-vectorized scatter. Pass 1 fuses admission (selection,
    /// late check in timestamp space, watermark advance) with the
    /// multiply-shift hash fold over the whole slice, writing one shard
    /// index per tuple into the scratch array; pass 2 is a software
    /// write-combining sweep that moves tuples into per-shard staging
    /// with the branchy admission work already out of the way. Admission
    /// is decision-for-decision the single dispatcher's columnar path
    /// ([`ShardedEngine::try_process_packets`]), against this handle's
    /// local watermark.
    fn stage(&mut self, pkts: &[Packet]) {
        const REJECT: u32 = u32::MAX;
        let bm = self.query.bucket_micros;
        let slack = self.query.slack_micros;
        let n_shards = self.staging.len();
        let mut wm = self.watermark;
        let mut closed_low = self.closed_low;
        let mut filtered = 0u64;
        let mut late = 0u64;
        self.shard_of.clear();
        self.shard_of.reserve(pkts.len());
        for pkt in pkts {
            let idx = if self.query.filter.as_ref().is_some_and(|f| !f(pkt)) {
                filtered += 1;
                REJECT
            } else if pkt.ts < closed_low {
                late += 1;
                REJECT
            } else {
                wm = wm.max(pkt.ts);
                let horizon = wm.saturating_sub(slack);
                if horizon >= closed_low.saturating_add(bm) {
                    closed_low = (horizon / bm) * bm;
                }
                let key = (self.query.group_by)(pkt);
                (match self.routing {
                    ShardBy::Key => route_key(key, n_shards),
                    ShardBy::RoundRobin => {
                        let s = self.rr;
                        self.rr = (self.rr + 1) % n_shards;
                        s
                    }
                }) as u32
            };
            self.shard_of.push(idx);
        }
        for (pkt, &s) in pkts.iter().zip(&self.shard_of) {
            if s != REJECT {
                self.staging[s as usize].push(*pkt);
            }
        }
        self.stats.tuples_in += pkts.len() as u64;
        self.stats.filtered += filtered;
        self.stats.late_drops += late;
        self.watermark = wm;
        self.closed_low = closed_low;
        if self.live {
            self.mirror_admission();
        }
    }

    /// Advances this handle's watermark as an explicit punctuation would:
    /// the next sealed epoch carries it to every shard (the fabric ships
    /// no separate punctuation messages).
    pub fn punctuate(&mut self, ts: Micros) {
        self.watermark = self.watermark.max(ts);
        let bm = self.query.bucket_micros;
        let target = (self.watermark.saturating_sub(self.query.slack_micros) / bm) * bm;
        self.closed_low = self.closed_low.max(target);
        if self.live {
            self.mirror_admission();
        }
    }

    /// Seals the staged tuples as one epoch: exactly one sequence-stamped
    /// message per shard (empty shards included — every shard must see
    /// every seq), carrying the handle's watermark.
    pub fn seal_epoch(&mut self) -> Result<(), fd_core::Error> {
        self.seal_logged(None)
    }

    fn seal_logged(&mut self, mut durable: Option<&mut DurableSink>) -> Result<(), fd_core::Error> {
        let p_count = self.fab.producers;
        let n_shards = self.staging.len();
        let policy = self.fab.overload.policy;
        let deadline = self.fab.overload.send_deadline;
        let budget = self.fab.overload.lag_budget.min(FABRIC_RING_DEPTH);
        // Lossy shedding happens HERE, before a seq is assigned or any
        // message ships: the fabric's per-shard apply order is keyed by
        // dense per-producer seqs, so dropping a single (producer, shard)
        // message would wedge every worker's strict rotation. DropOldest
        // therefore sheds the WHOLE epoch when any live shard's ring stays
        // full past the deadline (the seq is reused by the next seal —
        // density preserved); Subsample thins the staged batches in place
        // and ships the epoch normally, with its scale columns. Lossy
        // policies are refused for durable runs at config time, so the WAL
        // never has to distinguish a shed epoch from a missing one.
        match policy {
            ShedPolicy::Block => {}
            ShedPolicy::DropOldest => {
                let stalled = (0..n_shards).any(|s| {
                    !self.fab.shards[s].degraded.load(Relaxed)
                        && !self.staging[s].is_empty()
                        && matches!(
                            self.fab.ring_capacity(s, self.producer, deadline),
                            Capacity::TimedOut
                        )
                });
                if stalled {
                    let mut shed = 0u64;
                    for stage in &mut self.staging {
                        shed += stage.len() as u64;
                        stage.clear();
                    }
                    self.fab.telemetry.shed_tuples.fetch_add(shed, Relaxed);
                    self.fab.telemetry.shed_batches.fetch_add(1, Relaxed);
                    self.fab.telemetry.producers()[self.producer]
                        .shed_tuples
                        .fetch_add(shed, Relaxed);
                    return Ok(());
                }
            }
            ShedPolicy::Subsample { .. } => {}
        }
        let mut scale_cols: Vec<ScaleColumn> = vec![None; n_shards];
        if let Some(mut sub) = self.subsampler.take() {
            let mut sc = Vec::new();
            for (shard, col) in scale_cols.iter_mut().enumerate() {
                if self.staging[shard].is_empty()
                    || self.fab.ring_len(shard, self.producer) < budget
                {
                    continue;
                }
                let shed = sub.thin(&mut self.staging[shard], &mut sc);
                *col = Some(Arc::new(std::mem::take(&mut sc)));
                if shed > 0 {
                    self.fab.telemetry.shed_tuples.fetch_add(shed, Relaxed);
                    self.fab.telemetry.shards()[shard]
                        .shed_tuples
                        .fetch_add(shed, Relaxed);
                    self.fab.telemetry.producers()[self.producer]
                        .shed_tuples
                        .fetch_add(shed, Relaxed);
                }
            }
            self.subsampler = Some(sub);
        }
        let seq = self.epochs * p_count as u64 + self.producer as u64 + 1;
        self.epochs += 1;
        let wm = self.watermark;
        for (shard, col) in scale_cols.iter_mut().enumerate() {
            let pkts = if self.staging[shard].is_empty() {
                // Nothing staged: ship the bare epoch marker without
                // churning a pooled buffer through the ring.
                Arc::new(Vec::new())
            } else {
                Arc::new(std::mem::replace(
                    &mut self.staging[shard],
                    self.pool.take(self.batch_size),
                ))
            };
            if let Some(d) = durable.as_deref_mut() {
                d.batch(shard, seq, &pkts, wm);
            }
            let msg = Msg::Batch {
                seq,
                pkts,
                scales: col.take(),
                wm,
                sent: Instant::now(),
            };
            self.fab.send(shard, self.producer, msg)?;
        }
        if self.live {
            let t = &self.fab.telemetry.producers()[self.producer];
            t.epochs_sent.store(self.epochs, Relaxed);
            t.pool_reuses.store(self.pool.reuses(), Relaxed);
            t.pool_allocs.store(self.pool.allocs(), Relaxed);
        }
        Ok(())
    }

    /// Single-writer mirrors of this producer's admission counters.
    fn mirror_admission(&self) {
        let t = &self.fab.telemetry.producers()[self.producer];
        t.tuples_in.store(self.stats.tuples_in, Relaxed);
        t.filtered.store(self.stats.filtered, Relaxed);
        t.late_drops.store(self.stats.late_drops, Relaxed);
        t.watermark_us.store(self.watermark, Relaxed);
    }

    /// This handle's admission counters so far.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Ends this producer's stream: seals any staged remainder as a final
    /// epoch, closes its rings (removing the producer from every worker's
    /// rotation and from the frontier min), and records its stats for
    /// [`ShardedEngine::finish`] to fold.
    pub fn finish(mut self) -> EngineStats {
        if self.staging.iter().any(|s| !s.is_empty()) {
            // Only unsupervised worker loss can error here; the panic is
            // surfaced (counted, logged) by the engine's finish/join.
            let _ = self.seal_logged(None);
        }
        self.close();
        self.stats
    }

    /// Marks the producer finished on every shard and drops its senders.
    /// Runs under each shard's recovery lock so a concurrent respawn
    /// can't re-install a fresh sender afterwards (which would leave the
    /// new worker waiting forever on a ring nobody closes).
    fn close(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        for sh in &self.fab.shards {
            let mut inner = sh.inner.lock().unwrap_or_else(PoisonError::into_inner);
            inner.finished[self.producer] = true;
            *sh.senders[self.producer]
                .lock()
                .unwrap_or_else(PoisonError::into_inner) = None;
            drop(inner);
        }
        let mut out = self
            .fab
            .stats_out
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        out[self.producer] = Some(self.stats);
        drop(out);
        // Final mirrors are unconditional, so a post-run snapshot agrees
        // with the folded stats even with live telemetry off.
        self.mirror_admission();
        let t = &self.fab.telemetry.producers()[self.producer];
        t.epochs_sent.store(self.epochs, Relaxed);
        t.pool_reuses.store(self.pool.reuses(), Relaxed);
        t.pool_allocs.store(self.pool.allocs(), Relaxed);
    }
}

impl Drop for IngressHandle {
    fn drop(&mut self) {
        // An abandoned handle must still leave every worker's rotation,
        // or `finish` would join workers that wait forever on its rings.
        self.close();
    }
}

/// A parallel instance of one continuous query across N worker threads.
///
/// ```
/// use fd_engine::prelude::*;
/// use fd_core::decay::Monomial;
///
/// let query = Query::builder("decayed_traffic")
///     .group_by(|p| p.dst_key())
///     .bucket_secs(60)
///     .aggregate(fwd_sum_factory(Monomial::quadratic(), |p| p.len as f64))
///     .build();
/// let mut sharded = ShardedEngine::try_new(query, 4).expect("spawn shards");
/// # let pkt = Packet { ts: 1_000_000, src_ip: 1, dst_ip: 2, src_port: 3,
/// #                    dst_port: 80, len: 100, proto: Proto::Tcp };
/// sharded.process_batch(&[StreamEvent::Data(pkt)]);
/// let rows = sharded.finish();
/// assert_eq!(rows.len(), 1);
/// ```
pub struct ShardedEngine {
    query: Query,
    /// The per-worker copy of the query (selection stripped — the
    /// dispatcher has already applied it); also used to rebuild worker
    /// engines from checkpoints.
    worker_query: Query,
    routing: ShardBy,
    /// `None` = worker gone (degraded, or channel closed at finish).
    senders: Vec<Option<RingSender<Msg>>>,
    workers: Vec<Option<WorkerHandle>>,
    seats: Vec<Seat>,
    /// Per-shard staging buffers; swapped against [`Self::pool`] buffers
    /// on flush, so steady-state dispatch never allocates.
    pending: Vec<Vec<Packet>>,
    /// Recycled batch buffers, returned by workers: directly after apply
    /// (unsupervised) or by the post-checkpoint backlog trim (supervised).
    pool: BatchPool<Packet>,
    /// Tuples staged per shard before an automatic flush.
    batch_size: usize,
    /// Scratch for segmenting [`StreamEvent`] runs, reused across calls.
    run_buf: Vec<Packet>,
    rr: usize,
    watermark: Micros,
    closed_below: u64,
    /// Dispatcher-side admission counters (tuples_in / filtered /
    /// late_drops); worker-side counters are folded in at finish.
    stats: EngineStats,
    shard_stats: Vec<EngineStats>,
    /// Shared live-metrics registry (also held by every worker).
    telemetry: Arc<EngineTelemetry>,
    /// Supervision tunables shared with the running workers.
    config: Arc<SupervisorConfig>,
    /// Per-shard restart budget before degradation.
    max_restarts: u32,
    /// The overload control plane: shed policy, bounded-lag send
    /// deadline, lag budget, watchdog lease. Always present — the default
    /// is lossless `Block` with a long lease, which preserves the
    /// pre-overload semantics while still bounding every hot-path send.
    overload: OverloadConfig,
    /// Per-shard thinning stages, non-empty only under
    /// [`ShedPolicy::Subsample`] in single-dispatcher mode (the fabric's
    /// handles each own their own).
    subsamplers: Vec<Subsampler>,
    /// Abandoned (wedged) worker incarnations, joined at finish/drop once
    /// they observe their retired lease (see [`reap_zombies`]).
    zombies: Vec<WorkerHandle>,
    /// Injected fault, if any (shared with every worker incarnation).
    fault: Arc<Mutex<Option<Arc<FaultState>>>>,
    /// The durability writer, when [`ShardedEngine::try_durable`] opened a
    /// store. `None` = in-memory supervision only (the default).
    durable: Option<DurableSink>,
    /// The multi-producer ingress fabric, when
    /// [`try_producers`](Self::try_producers) enabled it. `None` = classic
    /// single-dispatcher mode (everything below `seats`/`senders` etc.).
    fabric: Option<Arc<FabShared>>,
    /// Coordinator-mode ingress handles; emptied by
    /// [`take_ingress_handles`](Self::take_ingress_handles).
    fab_handles: Vec<IngressHandle>,
    /// Next handle to deal a chunk to (coordinator mode).
    fab_cursor: usize,
    /// Epochs dealt so far (coordinator mode). Dealing round-robin from
    /// producer 0, epoch `i` (0-based) carries seq `i + 1` — so this is
    /// also the highest per-shard seq assigned, which durable commits
    /// record as `hi`.
    fab_epochs: u64,
    /// Per-tuple staging for coordinator mode, dealt as an epoch every
    /// `batch_size` tuples.
    fab_chunk: Vec<Packet>,
    /// Cached `telemetry.enabled()` so the per-tuple hot path tests a
    /// plain bool instead of an atomic.
    live: bool,
    done: bool,
}

impl ShardedEngine {
    /// Spawns `n_shards` workers for the query. Panics on zero shards;
    /// see [`ShardedEngine::try_new`] for the reporting variant.
    #[deprecated(since = "0.6.0", note = "use `try_new` and handle the error")]
    pub fn new(query: Query, n_shards: usize) -> Self {
        Self::try_new(query, n_shards).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Spawns `n_shards` workers for the query, reporting instead of
    /// panicking when `n_shards` is zero.
    pub fn try_new(query: Query, n_shards: usize) -> Result<Self, fd_core::Error> {
        if n_shards == 0 {
            return Err(fd_core::Error::InvalidParameter {
                name: "n_shards",
                value: 0.0,
                requirement: "at least one shard",
            });
        }
        let telemetry = Arc::new(EngineTelemetry::new(n_shards));
        let pool = BatchPool::new(0); // bound set below, once config exists
        let config = Arc::new(SupervisorConfig::default());
        let fault: Arc<Mutex<Option<Arc<FaultState>>>> = Arc::new(Mutex::new(None));
        // The dispatcher has already applied the selection; don't pay for
        // it again on the worker.
        let mut worker_query = query.clone();
        worker_query.filter = None;
        let seats: Vec<Seat> = (0..n_shards).map(|_| Seat::new()).collect();
        let mut senders = Vec::with_capacity(n_shards);
        let mut workers = Vec::with_capacity(n_shards);
        for (i, seat) in seats.iter().enumerate() {
            let mut engine = Engine::new(worker_query.clone());
            engine.keep_closed_state();
            let (tx, rx) = ring::<Msg>(CHANNEL_DEPTH);
            let handle = spawn_worker(
                i,
                engine,
                rx,
                Arc::clone(&telemetry),
                pool.clone(),
                Arc::clone(&config),
                Arc::clone(&seat.slot),
                Arc::clone(&seat.backlog),
                Arc::clone(&fault),
                Arc::clone(&seat.lease),
            );
            senders.push(Some(tx));
            workers.push(Some(handle));
        }
        let engine = Self {
            query,
            worker_query,
            routing: ShardBy::Key,
            senders,
            workers,
            seats,
            pending: vec![Vec::new(); n_shards],
            pool,
            batch_size: DEFAULT_BATCH_SIZE,
            run_buf: Vec::new(),
            rr: 0,
            watermark: 0,
            closed_below: 0,
            stats: EngineStats::default(),
            shard_stats: vec![EngineStats::default(); n_shards],
            telemetry,
            config,
            max_restarts: DEFAULT_MAX_RESTARTS,
            overload: OverloadConfig::default(),
            subsamplers: Vec::new(),
            zombies: Vec::new(),
            fault,
            durable: None,
            fabric: None,
            fab_handles: Vec::new(),
            fab_cursor: 0,
            fab_epochs: 0,
            fab_chunk: Vec::new(),
            live: true,
            done: false,
        };
        engine.retune_pool();
        Ok(engine)
    }

    /// Bounds the batch-buffer free list to the engine's actual working
    /// set: ring + staging buffers per shard, plus — when supervising —
    /// one checkpoint window of backlog per shard. Backlogged batches are
    /// alive until their trim, so a pool bound below the window would
    /// drop every trimmed buffer and force a cold allocation per batch;
    /// sized to the window, steady state recycles the same warm buffers.
    fn retune_pool(&self) {
        let window = match self.config.checkpoint_every.load(Relaxed) {
            0 => 0,
            every => ((every / self.batch_size as u64) + 2).min(512) as usize,
        };
        // Fault the working set in now, off the dispatch path. First use of
        // a cold batch buffer otherwise charges the dispatcher a page fault
        // per 4 KB of batch, and supervision's backlog roughly doubles how
        // many buffers circulate — the faults alone would eat the <3%
        // dispatch budget. Capped so pathological checkpoint intervals
        // cannot turn spawn into a 100 MB memset.
        let blank = Packet {
            ts: 0,
            src_ip: 0,
            dst_ip: 0,
            src_port: 0,
            dst_port: 0,
            len: 0,
            proto: Proto::Tcp,
        };
        if let Some(fab) = &self.fabric {
            // Pool sharding: each producer owns a pool sized for its share
            // of the fabric working set — per shard, a full ring plus one
            // staging buffer plus (supervised) one checkpoint window of
            // backlog. Total pooled capacity therefore scales with
            // `producers × shards`; a single-producer-sized pool would
            // drop most trimmed buffers and collapse the recycling
            // hit-rate under the fabric.
            let bound = self.n_shards() * (FABRIC_RING_DEPTH + 1 + window);
            for pool in &fab.pools {
                pool.set_max_pooled(bound);
                pool.prewarm(bound.min(256), self.batch_size, blank);
            }
        } else {
            let bound = self.n_shards() * (CHANNEL_DEPTH + 1 + window);
            self.pool.set_max_pooled(bound);
            self.pool.prewarm(bound.min(512), self.batch_size, blank);
        }
    }

    /// Sets the routing policy (default [`ShardBy::Key`]). Must be called
    /// before any tuple is processed.
    pub fn routing(mut self, routing: ShardBy) -> Self {
        assert_eq!(self.stats.tuples_in, 0, "set routing before processing");
        self.routing = routing;
        for h in &mut self.fab_handles {
            h.routing = routing;
        }
        self
    }

    /// Sets the flush threshold: tuples staged per shard before a batch
    /// ships to the worker (default [`DEFAULT_BATCH_SIZE`]). Larger
    /// batches amortize ring and wakeup costs; smaller ones cut
    /// dispatch-to-apply latency. Must be called before any tuple is
    /// processed; panics on zero — see [`ShardedEngine::try_batch_size`]
    /// for the reporting variant.
    pub fn batch_size(self, n: usize) -> Self {
        self.try_batch_size(n).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Sets the flush threshold, reporting instead of panicking on zero.
    pub fn try_batch_size(mut self, n: usize) -> Result<Self, fd_core::Error> {
        if n == 0 {
            return Err(fd_core::Error::InvalidParameter {
                name: "batch_size",
                value: 0.0,
                requirement: "at least one tuple per batch",
            });
        }
        assert_eq!(self.stats.tuples_in, 0, "set batch size before processing");
        self.batch_size = n;
        for h in &mut self.fab_handles {
            h.batch_size = n;
        }
        self.retune_pool();
        Ok(self)
    }

    /// Sets how many tuples a worker applies between engine checkpoints
    /// (default
    /// [`DEFAULT_CHECKPOINT_EVERY`](crate::supervisor::DEFAULT_CHECKPOINT_EVERY)).
    /// Smaller intervals shorten the replay tail at the price of more
    /// serialization; `0` disables supervision entirely — no checkpoints,
    /// no backlog, and a dead worker is once again a hard error. Must be
    /// called before any tuple is processed.
    pub fn checkpoint_every(self, tuples: u64) -> Self {
        assert_eq!(
            self.stats.tuples_in, 0,
            "set checkpoint interval before processing"
        );
        self.config.checkpoint_every.store(tuples, Relaxed);
        self.retune_pool();
        self
    }

    /// Sets the per-shard restart budget (default
    /// [`DEFAULT_MAX_RESTARTS`]): after this many respawns a shard is
    /// degraded instead of restarted. Must be called before any tuple is
    /// processed.
    pub fn max_restarts(mut self, n: u32) -> Self {
        assert_eq!(
            self.stats.tuples_in, 0,
            "set restart budget before processing"
        );
        assert!(
            self.fabric.is_none(),
            "set the restart budget before try_producers"
        );
        self.max_restarts = n;
        self
    }

    /// Configures the overload control plane (see [`crate::overload`]):
    /// the shed policy, the bounded-lag send deadline, the per-shard lag
    /// budget, and the stuck-shard watchdog lease. The default is
    /// lossless — [`ShedPolicy::Block`] with a
    /// [`DEFAULT_SEND_DEADLINE`](crate::overload::DEFAULT_SEND_DEADLINE)
    /// re-check cadence and a
    /// [`DEFAULT_LEASE`](crate::overload::DEFAULT_LEASE) watchdog lease.
    ///
    /// [`ShedPolicy::Subsample`] is refused for queries whose aggregate
    /// cannot apply Horvitz–Thompson scaled updates (anything beyond the
    /// decayed counts, sums and averages): thinned tuples would *bias*
    /// such summaries instead of reweighting them. Must be called before
    /// any tuple is processed, before
    /// [`try_producers`](Self::try_producers) (the fabric handles capture
    /// the config at construction) and before
    /// [`try_durable`](Self::try_durable) (which refuses lossy policies
    /// outright — a WAL must log what was admitted, not what survived a
    /// shed).
    pub fn try_overload(mut self, cfg: OverloadConfig) -> Result<Self, fd_core::Error> {
        assert_eq!(
            self.stats.tuples_in, 0,
            "configure overload before processing"
        );
        assert!(
            self.fabric.is_none(),
            "call try_overload before try_producers"
        );
        assert!(
            self.durable.is_none(),
            "call try_overload before try_durable"
        );
        self.subsamplers = match cfg.policy {
            ShedPolicy::Subsample { target_rate } => {
                if !self.query.aggregate.make(0).supports_scaled_updates() {
                    return Err(fd_core::Error::InvalidParameter {
                        name: "shed_policy",
                        value: target_rate,
                        requirement: "paired with an aggregate supporting \
                                      Horvitz-Thompson scaled updates \
                                      (decayed count/sum/avg)",
                    });
                }
                (0..self.n_shards())
                    .map(|s| {
                        Subsampler::new(
                            cfg.decay.clone(),
                            self.query.bucket_micros,
                            target_rate,
                            cfg.seed ^ (s as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                        )
                    })
                    .collect()
            }
            _ => Vec::new(),
        };
        self.overload = cfg;
        Ok(self)
    }

    /// Arms a deterministic fault in one shard worker (see
    /// [`crate::fault`]) — the hook the recovery tests and the CI fault
    /// matrix drive. Must be called before any tuple is processed; panics
    /// if the plan names a shard this engine doesn't have.
    pub fn inject_fault(self, plan: crate::fault::FaultPlan) -> Self {
        assert_eq!(self.stats.tuples_in, 0, "inject faults before processing");
        assert!(
            plan.shard < self.n_shards(),
            "fault shard {} out of range (engine has {} shards)",
            plan.shard,
            self.n_shards()
        );
        *self.fault.lock().unwrap_or_else(PoisonError::into_inner) =
            Some(Arc::new(FaultState::new(plan)));
        self
    }

    /// Replaces the single-dispatcher funnel with the multi-producer
    /// ingress fabric: `P` ingress handles, each owning a full
    /// route-and-scatter stage, feeding every shard worker through
    /// dedicated per-(producer, shard) SPSC rings. Results stay
    /// deterministic — and bit-identical to the single dispatcher for
    /// keyed routing of within-slack streams — as long as chunks are
    /// dealt to the handles round-robin (which the engine's own feed
    /// methods do automatically; see [`IngressHandle`] for the contract
    /// when feeding the handles from your own threads via
    /// [`take_ingress_handles`](Self::take_ingress_handles)).
    ///
    /// Call after routing/batching/supervision tuning and *before*
    /// [`try_durable`](Self::try_durable). `try_producers(1)` is a valid
    /// (single-producer) fabric, mostly useful for testing; the default
    /// engine keeps the classic dispatcher instead. Reports an error on
    /// zero producers.
    pub fn try_producers(mut self, producers: usize) -> Result<Self, fd_core::Error> {
        assert_eq!(self.stats.tuples_in, 0, "set producers before processing");
        assert!(
            self.durable.is_none(),
            "call try_producers before try_durable"
        );
        assert!(self.fabric.is_none(), "producers already set");
        if producers == 0 {
            return Err(fd_core::Error::InvalidParameter {
                name: "producers",
                value: 0.0,
                requirement: "at least one ingress producer",
            });
        }
        let n = self.n_shards();
        // Retire the single-dispatcher workers spawned by try_new: they
        // have seen nothing, so their drained state is empty.
        for shard in 0..n {
            self.senders[shard] = None;
            if let Some(handle) = self.workers[shard].take() {
                let _ = handle.join();
            }
            self.seats[shard].early_exit = None;
        }
        // A fresh registry with per-producer slots (try_new's had none);
        // the retired workers held the only other references.
        self.telemetry = Arc::new(EngineTelemetry::with_producers(n, producers));
        self.telemetry.set_enabled(self.live);
        let shards = (0..n)
            .map(|_| FabShard {
                backlogs: Mutex::new((0..producers).map(|_| VecDeque::new()).collect()),
                slot: Arc::new(CheckpointSlot::default()),
                senders: (0..producers).map(|_| Mutex::new(None)).collect(),
                inner: Mutex::new(FabInner {
                    worker: None,
                    restarts: 0,
                    generation: 0,
                    finished: vec![false; producers],
                    lease: Arc::new(WorkerLease::default()),
                    zombies: Vec::new(),
                    early_exit: None,
                }),
                degraded: AtomicBool::new(false),
            })
            .collect();
        let fab = Arc::new(FabShared {
            producers,
            shards,
            telemetry: Arc::clone(&self.telemetry),
            config: Arc::clone(&self.config),
            fault: Arc::clone(&self.fault),
            worker_query: self.worker_query.clone(),
            pools: (0..producers).map(|_| BatchPool::new(0)).collect(),
            max_restarts: self.max_restarts,
            overload: self.overload.clone(),
            stats_out: Mutex::new(vec![None; producers]),
        });
        self.fabric = Some(Arc::clone(&fab));
        self.retune_pool();
        let (senders, receivers) = ring_fabric::<Msg>(producers, n, FABRIC_RING_DEPTH);
        for (shard, rxs) in receivers.into_iter().enumerate() {
            let mut engine = Engine::new(self.worker_query.clone());
            engine.keep_closed_state();
            let mut inner = fab.shards[shard]
                .inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            let lease = Arc::clone(&inner.lease);
            inner.worker = Some(spawn_fabric_worker(
                shard,
                engine,
                rxs,
                Arc::clone(&fab),
                0,
                lease,
            ));
        }
        for (p, row) in senders.into_iter().enumerate() {
            for (shard, tx) in row.into_iter().enumerate() {
                // Stamped with the initial generation 0.
                *fab.shards[shard].senders[p]
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner) = Some((0, tx));
            }
        }
        self.fab_handles = (0..producers)
            .map(|p| {
                IngressHandle::new(
                    p,
                    self.query.clone(),
                    self.routing,
                    self.batch_size,
                    self.live,
                    &fab,
                )
            })
            .collect();
        Ok(self)
    }

    /// Detaches the fabric's ingress handles for genuinely parallel
    /// feeding: move each onto its own thread and deal input chunks to
    /// the handles round-robin from producer 0 (the determinism
    /// contract). Once taken, the engine's own feed methods must no
    /// longer be used; after every handle has finished (or been dropped),
    /// call [`finish`](Self::finish) to join the workers and merge.
    ///
    /// # Panics
    /// If the fabric is not enabled, the handles were already taken, or a
    /// durable store is attached — durable runs require coordinator mode,
    /// where the engine deals epochs itself and write-ahead-logs them.
    pub fn take_ingress_handles(&mut self) -> Vec<IngressHandle> {
        assert!(
            self.fabric.is_some(),
            "enable the fabric with try_producers first"
        );
        assert!(
            self.durable.is_none(),
            "durable runs use coordinator mode; feed the engine directly"
        );
        assert!(
            !self.fab_handles.is_empty(),
            "ingress handles already taken"
        );
        std::mem::take(&mut self.fab_handles)
    }

    /// Number of ingress producers (1 in single-dispatcher mode).
    pub fn n_producers(&self) -> usize {
        self.fabric.as_ref().map_or(1, |f| f.producers)
    }

    /// Opens (or recovers) a durable store under `dir` and attaches the
    /// WAL writer: from here on every dispatched message is logged, and
    /// [`durable_commit`](Self::durable_commit) makes stream positions
    /// crash-recoverable. Terminal builder step — call it last, after any
    /// routing/batching/supervision tuning, before any tuple is processed.
    ///
    /// When the directory holds a prior run's store, the engine resumes
    /// it: workers are restored from the on-disk checkpoints, the WAL tail
    /// is replayed through the normal batch path, and the returned
    /// [`RecoveryReport`] says from which input `position` the caller must
    /// re-feed its stream. Results are then bit-identical to a run that
    /// never crashed (for deterministic queries). Torn WAL tails are
    /// truncated and counted, never an error; a store damaged *below* its
    /// last commit is an explicit [`fd_core::Error::Durability`].
    ///
    /// Requires supervision (checkpoints are what gets persisted):
    /// erroring if `checkpoint_every(0)` disabled it. If an armed
    /// [`FaultKind::Disk`] fault is present, the store's I/O backend is
    /// wrapped in [`FaultyFs`] so the scheduled disk fault fires inside
    /// the durability layer.
    pub fn try_durable(
        mut self,
        dir: impl AsRef<std::path::Path>,
        opts: DurabilityOptions,
    ) -> Result<(Self, RecoveryReport), fd_core::Error> {
        assert_eq!(self.stats.tuples_in, 0, "open the store before processing");
        if !self.supervising() {
            return Err(fd_core::Error::InvalidParameter {
                name: "checkpoint_every",
                value: 0.0,
                requirement: "durability persists checkpoints; supervision must be on",
            });
        }
        if self.overload.policy.is_lossy() {
            return Err(fd_core::Error::InvalidParameter {
                name: "shed_policy",
                value: 0.0,
                requirement: "durable stores are lossless; \
                              overload shedding must be ShedPolicy::Block",
            });
        }
        let dir = dir.as_ref();
        let io: Arc<dyn IoBackend> = {
            let armed = self
                .fault
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .clone()
                .filter(|f| f.armed());
            match armed.map(|f| f.plan.kind) {
                Some(FaultKind::Disk(d)) => Arc::new(FaultyFs::new(Arc::clone(&opts.io), d)),
                _ => Arc::clone(&opts.io),
            }
        };
        let recovered = recover(&io, dir, self.n_shards())?;
        let mut replayed_batches = 0u64;
        let mut replayed_tuples = 0u64;
        if recovered.resumed && self.fabric.is_some() {
            self.resume_fabric(&recovered, &mut replayed_batches, &mut replayed_tuples)?;
        } else if recovered.resumed {
            if !recovered.commit.producers.is_empty() {
                return Err(fd_core::Error::Durability {
                    detail: format!(
                        "store was written by a {}-producer ingress fabric; \
                         enable try_producers({}) before try_durable to resume it",
                        recovered.commit.producers.len(),
                        recovered.commit.producers.len()
                    ),
                });
            }
            for shard in 0..self.n_shards() {
                // Retire the fresh worker spawned by try_new: it has seen
                // nothing, so its drained state is empty and discardable.
                self.senders[shard] = None;
                if let Some(handle) = self.workers[shard].take() {
                    let _ = handle.join();
                }
                self.seats[shard].early_exit = None;
                if let Some((seq, bytes)) = &recovered.ckpts[shard] {
                    let _ = self.seats[shard].slot.store(*seq, bytes.clone());
                }
                // Preload the replay tail into the seat's backlog, exactly
                // as if the dispatcher had sent it moments ago:
                // respawn_and_replay then feeds everything past the
                // checkpoint through the normal worker path.
                {
                    let mut log = self.seats[shard]
                        .backlog
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner);
                    log.clear();
                    for rec in &recovered.replay[shard] {
                        match rec {
                            ReplayMsg::Batch { seq, wm, pkts } => {
                                replayed_batches += 1;
                                replayed_tuples += pkts.len() as u64;
                                log.push_back(Msg::Batch {
                                    seq: *seq,
                                    pkts: Arc::new(pkts.clone()),
                                    scales: None,
                                    wm: *wm,
                                    sent: Instant::now(),
                                });
                            }
                            ReplayMsg::Punct { seq, wm } => {
                                log.push_back(Msg::Punctuate { seq: *seq, wm: *wm })
                            }
                        }
                    }
                }
                self.seats[shard].next_seq = recovered.commit.hi[shard] + 1;
                if !self.respawn_and_replay(shard) {
                    return Err(fd_core::Error::Durability {
                        detail: format!("shard {shard} worker died replaying the WAL tail"),
                    });
                }
            }
            // Restore the dispatcher's admission state from the commit, so
            // the re-fed input meets the exact decisions of the first run.
            let c = &recovered.commit;
            self.watermark = c.watermark;
            self.closed_below = c.closed_below;
            self.rr = (c.rr as usize) % self.n_shards();
            self.stats.tuples_in = c.tuples_in;
            self.stats.filtered = c.filtered;
            self.stats.late_drops = c.late_drops;
        }
        self.telemetry
            .wal_records_truncated
            .store(recovered.truncated, Relaxed);
        self.telemetry
            .recovery_replayed_batches
            .store(replayed_batches, Relaxed);
        let report = RecoveryReport {
            position: recovered.commit.position,
            watermark: recovered.commit.watermark,
            replayed_batches,
            replayed_tuples,
            truncated_records: recovered.truncated,
            resumed: recovered.resumed,
        };
        // The writer recycles each batch buffer back to the pool of the
        // producer that sealed it (recoverable from the seq — see
        // `Writer::recycle`), so every producer's bounded pool keeps its
        // hit rate under the fabric instead of producer 0's overflowing
        // while the rest starve.
        let (slots, recycle): (Vec<Arc<CheckpointSlot>>, Vec<BatchPool<Packet>>) =
            match &self.fabric {
                Some(fab) => (
                    fab.shards.iter().map(|s| Arc::clone(&s.slot)).collect(),
                    fab.pools.clone(),
                ),
                None => (
                    self.seats.iter().map(|s| Arc::clone(&s.slot)).collect(),
                    vec![self.pool.clone()],
                ),
            };
        let sink = DurableSink::spawn(
            dir,
            &io,
            opts.fsync,
            opts.segment_bytes,
            &recovered,
            slots,
            Arc::clone(&self.telemetry),
            recycle,
        )?;
        self.durable = Some(sink);
        Ok((self, report))
    }

    /// Fabric-mode resume: restore each shard worker from its on-disk
    /// checkpoint, preload the WAL tail into the per-producer backlog rows
    /// (routed by `(seq − 1) mod P`), replay it through the fresh rings,
    /// and restore every ingress handle's admission state from its commit
    /// block. The coordinator's dealing rotation resumes at epoch
    /// `hi mod P`, so the re-fed input reproduces the original epoch/seq
    /// assignment exactly.
    fn resume_fabric(
        &mut self,
        recovered: &crate::durability::Recovered,
        replayed_batches: &mut u64,
        replayed_tuples: &mut u64,
    ) -> Result<(), fd_core::Error> {
        let fab = Arc::clone(self.fabric.as_ref().expect("fabric mode"));
        let p_count = fab.producers;
        let commit = &recovered.commit;
        if commit.producers.len() != p_count {
            return Err(fd_core::Error::Durability {
                detail: format!(
                    "store was written with {} producers, engine configured with {p_count}; \
                     the epoch interleaving is producer-count-specific",
                    commit.producers.len()
                ),
            });
        }
        for shard in 0..self.n_shards() {
            let sh = &fab.shards[shard];
            // Retire the fresh worker spawned by try_producers: it has
            // seen nothing, so its drained state is empty and discardable.
            {
                for slot in &sh.senders {
                    *slot.lock().unwrap_or_else(PoisonError::into_inner) = None;
                }
                let mut inner = sh.inner.lock().unwrap_or_else(PoisonError::into_inner);
                if let Some(handle) = inner.worker.take() {
                    let _ = handle.join();
                }
                inner.early_exit = None;
            }
            if let Some((seq, bytes)) = &recovered.ckpts[shard] {
                let _ = sh.slot.store(*seq, bytes.clone());
            }
            {
                let mut rows = sh.backlogs.lock().unwrap_or_else(PoisonError::into_inner);
                for row in rows.iter_mut() {
                    row.clear();
                }
                for rec in &recovered.replay[shard] {
                    match rec {
                        ReplayMsg::Batch { seq, wm, pkts } => {
                            *replayed_batches += 1;
                            *replayed_tuples += pkts.len() as u64;
                            rows[((seq - 1) % p_count as u64) as usize].push_back(Msg::Batch {
                                seq: *seq,
                                pkts: Arc::new(pkts.clone()),
                                scales: None,
                                wm: *wm,
                                sent: Instant::now(),
                            });
                        }
                        ReplayMsg::Punct { .. } => {
                            return Err(fd_core::Error::Durability {
                                detail: format!(
                                    "shard {shard} WAL holds a punctuation record, which the \
                                     fabric never writes; the store is not a fabric store"
                                ),
                            });
                        }
                    }
                }
            }
            let ok = {
                let mut inner = sh.inner.lock().unwrap_or_else(PoisonError::into_inner);
                fab.respawn_locked(shard, &mut inner)
            };
            if !ok {
                return Err(fd_core::Error::Durability {
                    detail: format!("shard {shard} worker died replaying the WAL tail"),
                });
            }
        }
        // Restore each handle's admission state, so the re-fed input meets
        // the exact decisions (and seq assignments) of the first run.
        let bm = self.query.bucket_micros;
        let n_shards = self.n_shards();
        for (p, block) in commit.producers.iter().enumerate() {
            let h = &mut self.fab_handles[p];
            h.watermark = block.watermark;
            h.closed_low = block.closed_below.saturating_mul(bm);
            h.rr = (block.rr as usize) % n_shards;
            h.epochs = block.epochs;
            h.stats.tuples_in = block.tuples_in;
            h.stats.filtered = block.filtered;
            h.stats.late_drops = block.late_drops;
        }
        self.fab_epochs = commit.hi.first().copied().unwrap_or(0);
        self.fab_cursor = (self.fab_epochs % p_count as u64) as usize;
        self.watermark = commit.watermark;
        Ok(())
    }

    /// Declares the stream durable up to `position` (a caller-defined
    /// input offset, typically "events fed so far"): flushes staged
    /// batches, broadcasts the watermark, and enqueues a commit record
    /// carrying the dispatcher state and each shard's high sequence. After
    /// recovery, the caller re-feeds input from the newest committed
    /// position. A no-op without an attached store, or once degraded.
    pub fn durable_commit(&mut self, position: u64) -> Result<(), fd_core::Error> {
        if self.durable.is_none() {
            return Ok(());
        }
        if self.fabric.is_some() {
            // A commit covers whole epochs: deal the per-tuple remainder
            // first so every admitted tuple below `position` is sealed and
            // WAL-logged before the commit record that covers it.
            self.flush_fab_chunk()?;
            let bm = self.query.bucket_micros;
            let producers: Vec<ProducerCommit> = self
                .fab_handles
                .iter()
                .map(|h| ProducerCommit {
                    watermark: h.watermark,
                    closed_below: h.closed_low / bm,
                    rr: h.rr as u64,
                    epochs: h.epochs,
                    tuples_in: h.stats.tuples_in,
                    filtered: h.stats.filtered,
                    late_drops: h.stats.late_drops,
                })
                .collect();
            assert!(
                !producers.is_empty(),
                "durable fabric runs use coordinator mode; handles must not be taken"
            );
            // The legacy scalar fields carry aggregates; recovery restores
            // the handles from the per-producer blocks.
            let c = CommitState {
                position,
                watermark: producers.iter().map(|p| p.watermark).max().unwrap_or(0),
                closed_below: producers.iter().map(|p| p.closed_below).min().unwrap_or(0),
                rr: self.fab_cursor as u64,
                tuples_in: producers.iter().map(|p| p.tuples_in).sum(),
                filtered: producers.iter().map(|p| p.filtered).sum(),
                late_drops: producers.iter().map(|p| p.late_drops).sum(),
                hi: vec![self.fab_epochs; self.n_shards()],
                producers,
            };
            if let Some(d) = self.durable.as_mut() {
                d.commit(c);
            }
            return Ok(());
        }
        // Every *staged* tuple below `position` must reach its shard (and
        // therefore the WAL) before the commit record covers it: staged
        // buffers hold tuples hash-scattered across the input range, so an
        // uncovered one could not be recovered by suffix re-feed. Dispatched
        // coverage is all the commit needs, though — no watermark broadcast
        // here (the normal feed path emits puncts, and they are WAL-logged).
        for shard in 0..self.n_shards() {
            if !self.pending[shard].is_empty() {
                self.flush_shard(shard)?;
            }
        }
        let hi: Vec<u64> = self.seats.iter().map(|s| s.next_seq - 1).collect();
        let c = CommitState {
            position,
            watermark: self.watermark,
            closed_below: self.closed_below,
            rr: self.rr as u64,
            tuples_in: self.stats.tuples_in,
            filtered: self.stats.filtered,
            late_drops: self.stats.late_drops,
            hi,
            producers: Vec::new(),
        };
        if let Some(d) = self.durable.as_mut() {
            d.commit(c);
        }
        Ok(())
    }

    /// Whether the durability layer hit a persistent disk failure and the
    /// engine fell back to in-memory supervision (`false` when no store is
    /// attached). Mirrored as the `durability_degraded` telemetry gauge.
    pub fn durability_degraded(&self) -> bool {
        self.durable.as_ref().is_some_and(|d| d.degraded())
    }

    /// The batch-recycling pool shared with the workers — its
    /// [`reuses`](BatchPool::reuses) / [`allocs`](BatchPool::allocs)
    /// counters quantify the zero-allocation steady state.
    pub fn batch_pool(&self) -> &BatchPool<Packet> {
        &self.pool
    }

    /// Turns hot-path telemetry mirroring on or off (default on; the
    /// overhead is a few relaxed stores per tuple — see the
    /// `telemetry_overhead` bench). End-of-run counters are recorded
    /// either way. Must be called before any tuple is processed.
    pub fn live_telemetry(mut self, on: bool) -> Self {
        assert_eq!(self.stats.tuples_in, 0, "set telemetry before processing");
        self.live = on;
        self.telemetry.set_enabled(on);
        for h in &mut self.fab_handles {
            h.live = on;
        }
        self
    }

    /// The shared live-metrics registry. Clone the `Arc` to watch the run
    /// from another thread; it stays readable (with the final counts)
    /// after `finish()` and after the engine is dropped.
    pub fn telemetry(&self) -> &Arc<EngineTelemetry> {
        &self.telemetry
    }

    /// Number of worker shards.
    pub fn n_shards(&self) -> usize {
        self.pending.len()
    }

    /// The query's display name.
    pub fn query_name(&self) -> &str {
        &self.query.name
    }

    /// Whether supervision is active (a nonzero checkpoint interval).
    fn supervising(&self) -> bool {
        self.config.checkpoint_every.load(Relaxed) > 0
    }

    fn route(&mut self, key: u64) -> usize {
        match self.routing {
            ShardBy::Key => route_key(key, self.n_shards()),
            ShardBy::RoundRobin => {
                let s = self.rr;
                self.rr = (self.rr + 1) % self.n_shards();
                s
            }
        }
    }

    /// Offers one tuple: global admission (filter, late check, watermark),
    /// then staging for the owning shard. Mirrors [`Engine::process`]
    /// decision for decision.
    ///
    /// # Panics
    /// Panics if a shard worker has died while supervision is disabled
    /// (`checkpoint_every(0)`); see [`ShardedEngine::try_process`] for the
    /// reporting variant. With supervision on (the default), worker death
    /// is recovered or degraded internally and never panics here.
    pub fn process(&mut self, pkt: &Packet) {
        self.try_process(pkt).unwrap_or_else(|e| panic!("{e}"));
    }

    /// Offers one tuple, reporting [`fd_core::Error::WorkerLost`] instead
    /// of panicking when an unsupervised worker has died.
    pub fn try_process(&mut self, pkt: &Packet) -> Result<(), fd_core::Error> {
        debug_assert!(!self.done, "process after finish");
        if self.fabric.is_some() {
            // Coordinator mode: buffer into batch_size chunks, dealt to
            // the handles as whole epochs.
            self.fab_chunk.push(*pkt);
            if self.fab_chunk.len() >= self.batch_size {
                self.flush_fab_chunk()?;
            }
            return Ok(());
        }
        self.stats.tuples_in += 1;
        // Admission counters have a single writer (this thread), so the
        // live mirror is a relaxed store of the local count — no RMW.
        if self.live {
            self.telemetry
                .tuples_in
                .store(self.stats.tuples_in, Relaxed);
        }
        if let Some(f) = &self.query.filter {
            if !f(pkt) {
                self.stats.filtered += 1;
                if self.live {
                    self.telemetry.filtered.store(self.stats.filtered, Relaxed);
                }
                return Ok(());
            }
        }
        let bucket = pkt.ts / self.query.bucket_micros;
        if bucket < self.closed_below {
            self.stats.late_drops += 1;
            if self.live {
                self.telemetry
                    .late_drops
                    .store(self.stats.late_drops, Relaxed);
            }
            return Ok(());
        }
        self.watermark = self.watermark.max(pkt.ts);
        if self.live {
            self.telemetry
                .dispatcher_watermark
                .store(self.watermark, Relaxed);
        }
        let key = (self.query.group_by)(pkt);
        let shard = self.route(key);
        self.pending[shard].push(*pkt);
        if self.pending[shard].len() >= self.batch_size {
            self.flush_shard(shard)?;
        }
        let target =
            self.watermark.saturating_sub(self.query.slack_micros) / self.query.bucket_micros;
        self.closed_below = self.closed_below.max(target);
        Ok(())
    }

    /// Ships a shard's staged tuples, swapping in a recycled buffer from
    /// the pool so the staging slot is ready without allocating.
    fn flush_shard(&mut self, shard: usize) -> Result<(), fd_core::Error> {
        let batch = std::mem::replace(&mut self.pending[shard], self.pool.take(self.batch_size));
        self.dispatch_batch(shard, batch)
    }

    /// Offers a batch of tuples through the columnar fast path: one fused
    /// pass doing admission (filter, late check, watermark advance) and
    /// route-and-scatter into the per-shard staging buffers.
    ///
    /// Admission is decision-for-decision identical to calling
    /// [`process`](Self::process) per tuple — the late check compares
    /// timestamps against the closed boundary held in timestamp space
    /// (`closed_below · bucket_micros`), which removes both per-tuple
    /// divisions: `ts / bm < closed_below  ⇔  ts < closed_below · bm`
    /// exactly, for non-negative integers, and the boundary division
    /// reruns only when the watermark gains a whole bucket. Stats and
    /// telemetry mirrors are stored once per batch instead of once per
    /// tuple.
    ///
    /// # Panics
    /// As [`ShardedEngine::process`]; see
    /// [`ShardedEngine::try_process_packets`].
    pub fn process_packets(&mut self, pkts: &[Packet]) {
        self.try_process_packets(pkts)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// The columnar fast path, reporting [`fd_core::Error::WorkerLost`]
    /// instead of panicking when an unsupervised worker has died.
    pub fn try_process_packets(&mut self, pkts: &[Packet]) -> Result<(), fd_core::Error> {
        debug_assert!(!self.done, "process after finish");
        if pkts.is_empty() {
            return Ok(());
        }
        if self.fabric.is_some() {
            // Flush any per-tuple staging first, preserving stream order,
            // then deal this chunk as the next epoch.
            self.flush_fab_chunk()?;
            return self.deal_epoch(pkts);
        }
        let bm = self.query.bucket_micros;
        let slack = self.query.slack_micros;
        let mut wm = self.watermark;
        // The boundary moves only when the watermark gains a whole bucket,
        // so the division to recompute it runs per bucket, not per tuple.
        let mut closed_low = self.closed_below.saturating_mul(bm);
        let mut filtered = 0u64;
        let mut late = 0u64;
        let mut result = Ok(());
        for pkt in pkts {
            if let Some(f) = self.query.filter.as_ref() {
                if !f(pkt) {
                    filtered += 1;
                    continue;
                }
            }
            if pkt.ts < closed_low {
                late += 1;
                continue;
            }
            wm = wm.max(pkt.ts);
            let horizon = wm.saturating_sub(slack);
            if horizon >= closed_low.saturating_add(bm) {
                closed_low = (horizon / bm) * bm;
            }
            let key = (self.query.group_by)(pkt);
            let shard = self.route(key);
            self.pending[shard].push(*pkt);
            if self.pending[shard].len() >= self.batch_size {
                if let Err(e) = self.flush_shard(shard) {
                    result = Err(e);
                    break;
                }
            }
        }
        self.stats.tuples_in += pkts.len() as u64;
        self.stats.filtered += filtered;
        self.stats.late_drops += late;
        self.watermark = wm;
        self.closed_below = closed_low / bm;
        if self.live {
            self.telemetry
                .tuples_in
                .store(self.stats.tuples_in, Relaxed);
            self.telemetry.filtered.store(self.stats.filtered, Relaxed);
            self.telemetry
                .late_drops
                .store(self.stats.late_drops, Relaxed);
            self.telemetry.dispatcher_watermark.store(wm, Relaxed);
        }
        result
    }

    /// Processes a punctuation: advances the global watermark and
    /// broadcasts it, closing due buckets on every shard.
    ///
    /// # Panics
    /// As [`ShardedEngine::process`]; see
    /// [`ShardedEngine::try_punctuate`].
    pub fn punctuate(&mut self, ts: Micros) {
        self.try_punctuate(ts).unwrap_or_else(|e| panic!("{e}"));
    }

    /// Processes a punctuation, reporting [`fd_core::Error::WorkerLost`]
    /// instead of panicking when an unsupervised worker has died.
    pub fn try_punctuate(&mut self, ts: Micros) -> Result<(), fd_core::Error> {
        self.watermark = self.watermark.max(ts);
        if self.live {
            self.telemetry
                .dispatcher_watermark
                .store(self.watermark, Relaxed);
        }
        if self.fabric.is_some() {
            // A punctuation is an admission-state event: it advances every
            // handle's watermark, and the *next* sealed epoch carries it
            // to the workers (the fabric ships no punctuation messages).
            self.flush_fab_chunk()?;
            for h in &mut self.fab_handles {
                h.punctuate(ts);
            }
            return Ok(());
        }
        let target =
            self.watermark.saturating_sub(self.query.slack_micros) / self.query.bucket_micros;
        self.closed_below = self.closed_below.max(target);
        self.sync_watermark()
    }

    /// Offers a batch of stream elements, then broadcasts the advanced
    /// watermark so every shard closes the same buckets — the per-batch
    /// synchronisation point of the sharded pipeline.
    ///
    /// Runs of consecutive [`StreamEvent::Data`] go through the columnar
    /// [`process_packets`](Self::process_packets) fast path; punctuations
    /// act as barriers between runs, exactly as in per-event processing.
    ///
    /// # Panics
    /// As [`ShardedEngine::process`]; see
    /// [`ShardedEngine::try_process_batch`].
    pub fn process_batch(&mut self, events: &[StreamEvent]) {
        self.try_process_batch(events)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Offers a batch of stream elements, reporting
    /// [`fd_core::Error::WorkerLost`] instead of panicking when an
    /// unsupervised worker has died.
    pub fn try_process_batch(&mut self, events: &[StreamEvent]) -> Result<(), fd_core::Error> {
        let mut run = std::mem::take(&mut self.run_buf);
        run.clear();
        let mut feed = || -> Result<(), fd_core::Error> {
            for ev in events {
                match ev {
                    StreamEvent::Data(pkt) => run.push(*pkt),
                    StreamEvent::Punctuation(ts) => {
                        self.try_process_packets(&run)?;
                        run.clear();
                        self.try_punctuate(*ts)?;
                    }
                }
            }
            self.try_process_packets(&run)
        };
        let result = feed();
        run.clear();
        self.run_buf = run;
        result?;
        self.sync_watermark()
    }

    /// Flushes staged tuples and broadcasts the current global watermark
    /// to all shards.
    fn sync_watermark(&mut self) -> Result<(), fd_core::Error> {
        if self.fabric.is_some() {
            return self.flush_fab_chunk();
        }
        for shard in 0..self.n_shards() {
            if !self.pending[shard].is_empty() {
                self.flush_shard(shard)?;
            }
        }
        let w = self.watermark;
        if w > 0 {
            for shard in 0..self.n_shards() {
                self.dispatch_punct(shard, w)?;
            }
        }
        Ok(())
    }

    /// Coordinator mode: deals one chunk to the next handle in rotation,
    /// sealing exactly one epoch — the determinism contract of the
    /// fabric. Epoch `i` (0-based) goes to handle `i mod P` and carries
    /// per-shard seq `i + 1`.
    fn deal_epoch(&mut self, pkts: &[Packet]) -> Result<(), fd_core::Error> {
        assert!(
            !self.fab_handles.is_empty(),
            "ingress handles were taken; feed them directly"
        );
        let p = self.fab_cursor;
        self.fab_cursor = (self.fab_cursor + 1) % self.fab_handles.len();
        self.fab_epochs += 1;
        self.fab_handles[p].ingest_logged(pkts, self.durable.as_mut())
    }

    /// Deals the per-tuple staging buffer as an epoch, if it holds
    /// anything.
    fn flush_fab_chunk(&mut self) -> Result<(), fd_core::Error> {
        if self.fab_chunk.is_empty() {
            return Ok(());
        }
        let chunk = std::mem::take(&mut self.fab_chunk);
        let result = self.deal_epoch(&chunk);
        self.fab_chunk = chunk;
        self.fab_chunk.clear();
        result
    }

    fn next_seq(&mut self, shard: usize) -> u64 {
        let seq = self.seats[shard].next_seq;
        self.seats[shard].next_seq += 1;
        seq
    }

    /// Ships one batch to a shard (or counts it dropped if the shard is
    /// degraded), recovering the worker if the send finds it dead.
    fn dispatch_batch(
        &mut self,
        shard: usize,
        mut pkts: Vec<Packet>,
    ) -> Result<(), fd_core::Error> {
        let mut scales: Option<Vec<f64>> = None;
        let displace = if self.seats[shard].degraded {
            false
        } else {
            self.admit_batch(shard, &mut pkts, &mut scales)
        };
        // Re-checked after admission: the watchdog may have degraded the
        // shard while we waited for capacity.
        if self.seats[shard].degraded {
            self.telemetry
                .dropped_degraded
                .fetch_add(pkts.len() as u64, Relaxed);
            self.pool.put(pkts);
            return Ok(());
        }
        if pkts.is_empty() {
            // Subsampling shed the whole batch: nothing to ship, and no
            // seq is assigned (the sheds are already counted).
            self.pool.put(pkts);
            return Ok(());
        }
        let seq = self.next_seq(shard);
        let msg = Msg::Batch {
            seq,
            pkts: Arc::new(pkts),
            scales: scales.map(Arc::new),
            wm: 0,
            sent: Instant::now(),
        };
        // Queue depth is the one genuinely two-writer gauge (incremented
        // here, decremented by the worker), so it is a per-message RMW —
        // unconditional, to keep both sides consistent however the
        // enabled flag is toggled.
        let tel = &self.telemetry.shards()[shard];
        tel.batches_sent.fetch_add(1, Relaxed);
        tel.queue_depth.fetch_add(1, Relaxed);
        self.dispatch(shard, msg, displace)
    }

    /// Ships one punctuation to a shard (skipped when degraded),
    /// recovering the worker if the send finds it dead.
    fn dispatch_punct(&mut self, shard: usize, wm: Micros) -> Result<(), fd_core::Error> {
        if self.seats[shard].degraded {
            return Ok(());
        }
        let displace = self.admit_punct(shard);
        if self.seats[shard].degraded {
            return Ok(());
        }
        let seq = self.next_seq(shard);
        let msg = Msg::Punctuate { seq, wm };
        let tel = &self.telemetry.shards()[shard];
        tel.punctuations_sent.fetch_add(1, Relaxed);
        tel.queue_depth.fetch_add(1, Relaxed);
        self.dispatch(shard, msg, displace)
    }

    /// Bounded-lag admission for one batch: waits for ring capacity in
    /// deadline-sized slices, runs the stuck-shard watchdog between
    /// slices, and applies the shed policy once the shard has stayed full
    /// past a whole deadline. Returns `true` when the caller must use a
    /// displacing send (`DropOldest` decided to shed the oldest queued
    /// message). `Ready` capacity is stable: this thread is the ring's
    /// only producer, so the send that follows never blocks.
    fn admit_batch(
        &mut self,
        shard: usize,
        pkts: &mut Vec<Packet>,
        scales: &mut Option<Vec<f64>>,
    ) -> bool {
        // Under `Subsample`, thin as soon as the shard sits at or past its
        // lag budget — before the ring is even full. The budget clamps to
        // the ring depth, so the default (usize::MAX) engages thinning
        // only when the ring is actually full past the deadline.
        let budget = self.overload.lag_budget.min(CHANNEL_DEPTH);
        let mut thinned = false;
        loop {
            let (cap, depth) = match &self.senders[shard] {
                Some(tx) => (tx.wait_capacity(self.overload.send_deadline), tx.len()),
                // Worker gone: let `dispatch` discover it and run the
                // normal recovery protocol.
                None => return false,
            };
            match cap {
                Capacity::Ready => {
                    if !thinned && !self.subsamplers.is_empty() && depth >= budget {
                        self.thin(shard, pkts, scales);
                    }
                    return false;
                }
                // A closed ring means the worker died; the send below
                // discovers it and recovers.
                Capacity::Closed => return false,
                Capacity::TimedOut => {
                    if self.watchdog(shard) {
                        // The watchdog respawned (or degraded) the shard;
                        // re-evaluate against the fresh — empty — ring.
                        continue;
                    }
                    match self.overload.policy {
                        // Lossless: keep waiting, one deadline at a time.
                        ShedPolicy::Block => {}
                        ShedPolicy::DropOldest => return true,
                        ShedPolicy::Subsample { .. } => {
                            if !thinned {
                                thinned = true;
                                self.thin(shard, pkts, scales);
                            }
                        }
                    }
                }
            }
        }
    }

    /// [`admit_batch`](Self::admit_batch) for punctuations: no payload to
    /// thin, so `Subsample` degenerates to `Block` (the ring drains in
    /// bounded time once thinning relieves the batches) and only
    /// `DropOldest` requests a displacing send.
    fn admit_punct(&mut self, shard: usize) -> bool {
        loop {
            let cap = match &self.senders[shard] {
                Some(tx) => tx.wait_capacity(self.overload.send_deadline),
                None => return false,
            };
            match cap {
                Capacity::Ready | Capacity::Closed => return false,
                Capacity::TimedOut => {
                    if self.watchdog(shard) {
                        continue;
                    }
                    if matches!(self.overload.policy, ShedPolicy::DropOldest) {
                        return true;
                    }
                }
            }
        }
    }

    /// Runs the shard's decay-aware thinning stage over a staged batch,
    /// recording the shed in telemetry. Only called with a non-empty
    /// subsampler set (`ShedPolicy::Subsample`).
    fn thin(&mut self, shard: usize, pkts: &mut Vec<Packet>, scales: &mut Option<Vec<f64>>) {
        let mut sc = Vec::new();
        let shed = self.subsamplers[shard].thin(pkts, &mut sc);
        *scales = Some(sc);
        if shed > 0 {
            self.telemetry.shed_tuples.fetch_add(shed, Relaxed);
            self.telemetry.shards()[shard]
                .shed_tuples
                .fetch_add(shed, Relaxed);
        }
    }

    /// The stuck-shard watchdog: a worker whose ring has been full for a
    /// whole send deadline AND whose lease heartbeat has gone stale is
    /// declared wedged and replaced. Returns `true` when it acted
    /// (respawned or degraded the shard) so the caller re-evaluates
    /// capacity; `false` means the worker is slow but alive — keep
    /// applying the shed policy.
    fn watchdog(&mut self, shard: usize) -> bool {
        if !self.supervising() || !self.seats[shard].lease.is_stale(self.overload.lease) {
            return false;
        }
        self.wedge_respawn(shard);
        true
    }

    /// Abandons a wedged worker incarnation and brings up a fresh one
    /// through the normal checkpoint + backlog replay path, spending
    /// restarts from the shard's budget. Safe Rust cannot kill a thread:
    /// the zombie is parked and joined at finish/drop once it observes its
    /// retired lease (or detached if it never does).
    fn wedge_respawn(&mut self, shard: usize) {
        eprintln!(
            "fd-shard-{shard}: worker wedged (no heartbeat for {:?}); respawning",
            self.seats[shard].lease.stale_for()
        );
        self.seats[shard].lease.retire();
        self.senders[shard] = None;
        if let Some(handle) = self.workers[shard].take() {
            if handle.is_finished() {
                let _ = handle.join();
            } else {
                self.zombies.push(handle);
            }
        }
        self.telemetry.wedged_respawns.fetch_add(1, Relaxed);
        if self.seats[shard].slot.unsupported() || !self.try_restart(shard) {
            self.degrade(shard);
        }
    }

    /// Accounts for a message displaced off a full ring by `DropOldest`:
    /// purges it from the replay backlog (it will never be applied, so it
    /// must not be replayed either), counts the shed, and recycles its
    /// buffer.
    fn shed_displaced(&mut self, shard: usize, old: Msg) {
        let dseq = old.seq();
        self.telemetry.shards()[shard]
            .queue_depth
            .fetch_sub(1, Relaxed);
        if self.supervising() && !self.seats[shard].slot.unsupported() {
            self.seats[shard]
                .backlog
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .retain(|m| m.seq() != dseq);
        }
        if let Msg::Batch { pkts, .. } = old {
            let shed = pkts.len() as u64;
            self.telemetry.shed_tuples.fetch_add(shed, Relaxed);
            self.telemetry.shed_batches.fetch_add(1, Relaxed);
            self.telemetry.shards()[shard]
                .shed_tuples
                .fetch_add(shed, Relaxed);
            if let Ok(buf) = Arc::try_unwrap(pkts) {
                self.pool.put(buf);
            }
        }
    }

    /// Retains the message in the backlog (supervised mode), sends it
    /// (displacing the oldest queued message when `displace` — the
    /// `DropOldest` verdict from admission), and runs the recovery
    /// protocol if the worker turns out to be dead.
    fn dispatch(&mut self, shard: usize, msg: Msg, displace: bool) -> Result<(), fd_core::Error> {
        if self.supervising() && !self.seats[shard].slot.unsupported() {
            // Clone into the backlog *before* sending, so the failed
            // message itself is replayable. This push is the dispatch
            // path's entire supervision cost: covered entries are trimmed
            // by the worker after each checkpoint it publishes.
            self.seats[shard]
                .backlog
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back(msg.clone());
        }
        // Write-ahead: the record is enqueued to the WAL writer before the
        // message reaches the worker, and on the same ring the later commit
        // record travels on — so a commit can never be written before the
        // batches it covers.
        if let Some(d) = self.durable.as_mut() {
            match &msg {
                Msg::Batch { seq, pkts, wm, .. } => d.batch(shard, *seq, pkts, *wm),
                Msg::Punctuate { seq, wm } => d.punct(shard, *seq, *wm),
            }
        }
        let mut displaced = None;
        let alive = match &self.senders[shard] {
            // Admission's `DropOldest` verdict: bump the oldest queued
            // message out of the full ring instead of waiting behind it.
            Some(tx) if displace => match tx.send_displacing(msg) {
                Ok(old) => {
                    displaced = old;
                    true
                }
                Err(_) => false,
            },
            Some(tx) => tx.send(msg).is_ok(),
            None => false,
        };
        if let Some(old) = displaced {
            self.shed_displaced(shard, old);
        }
        if alive {
            return Ok(());
        }
        // A send fails only if the worker is gone — i.e. it panicked.
        if !self.supervising() {
            return Err(fd_core::Error::WorkerLost { shard });
        }
        self.reap(shard);
        if !self.seats[shard].slot.unsupported() && self.try_restart(shard) {
            Ok(())
        } else {
            self.degrade(shard);
            Ok(())
        }
    }

    /// Joins a dead worker's thread, recording its panic. Closes the
    /// channel first so a (theoretically) live worker drains and exits.
    fn reap(&mut self, shard: usize) {
        self.senders[shard] = None;
        if let Some(handle) = self.workers[shard].take() {
            match handle.join() {
                Ok(state) => self.seats[shard].early_exit = Some(state),
                Err(payload) => {
                    self.telemetry.worker_panics.fetch_add(1, Relaxed);
                    eprintln!(
                        "fd-shard-{shard}: worker panicked: {}",
                        panic_message(&payload)
                    );
                }
            }
        }
    }

    /// Bounded-restart loop: respawn from the checkpoint with exponential
    /// backoff, replay the backlog, retry if the replay dies too. Returns
    /// `true` once a live worker is in place, `false` when the budget is
    /// exhausted (the caller degrades the shard).
    fn try_restart(&mut self, shard: usize) -> bool {
        while self.seats[shard].restarts < self.max_restarts {
            let attempt = self.seats[shard].restarts;
            self.seats[shard].restarts += 1;
            self.telemetry.restarts.fetch_add(1, Relaxed);
            std::thread::sleep(backoff(attempt));
            if self.respawn_and_replay(shard) {
                return true;
            }
            // The replay killed the fresh worker (a permanent fault):
            // reap it and spend another restart.
            self.reap(shard);
        }
        false
    }

    /// Restores an engine from the shard's checkpoint (or builds a fresh
    /// one if no checkpoint was taken yet), spawns a new worker on a new
    /// ring, and replays every backlog message past the checkpoint.
    /// Returns `false` if the restore fails or the worker dies mid-replay.
    fn respawn_and_replay(&mut self, shard: usize) -> bool {
        let (ckpt_seq, engine) = match self.seats[shard].slot.load() {
            Some((seq, bytes)) => match Engine::restore(self.worker_query.clone(), &bytes) {
                Ok(e) => (seq, e),
                Err(err) => {
                    // "Can't happen" (we wrote these bytes); surface it
                    // rather than looping on a poisoned slot.
                    eprintln!("fd-shard-{shard}: checkpoint restore failed: {err:?}");
                    return false;
                }
            },
            None => {
                let mut e = Engine::new(self.worker_query.clone());
                e.keep_closed_state();
                (0, e)
            }
        };
        let (tx, rx) = ring::<Msg>(CHANNEL_DEPTH);
        // A fresh incarnation gets a fresh lease; the retired one stays
        // with any zombie still holding it.
        self.seats[shard].lease = Arc::new(WorkerLease::default());
        let handle = spawn_worker(
            shard,
            engine,
            rx,
            Arc::clone(&self.telemetry),
            self.pool.clone(),
            Arc::clone(&self.config),
            Arc::clone(&self.seats[shard].slot),
            Arc::clone(&self.seats[shard].backlog),
            Arc::clone(&self.fault),
            Arc::clone(&self.seats[shard].lease),
        );
        self.workers[shard] = Some(handle);
        self.senders[shard] = Some(tx);
        // The old ring died with un-decremented messages in it; the gauge
        // restarts from the replay backlog.
        let tel = &self.telemetry.shards()[shard];
        tel.queue_depth.store(0, Relaxed);
        // The dead worker can't contend for the lock; a poisoned mutex
        // just means it died mid-trim, which leaves the deque intact.
        let replay: Vec<Msg> = self.seats[shard]
            .backlog
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .filter(|m| m.seq() > ckpt_seq)
            .cloned()
            .collect();
        for msg in replay {
            let tel = &self.telemetry.shards()[shard];
            if let Msg::Batch { pkts, .. } = &msg {
                self.telemetry.replayed_batches.fetch_add(1, Relaxed);
                self.telemetry
                    .replayed_tuples
                    .fetch_add(pkts.len() as u64, Relaxed);
            }
            tel.queue_depth.fetch_add(1, Relaxed);
            let sent = match &self.senders[shard] {
                Some(tx) => tx.send(msg).is_ok(),
                None => false,
            };
            if !sent {
                return false;
            }
        }
        true
    }

    /// Gives up on a shard: drops its backlog (counting the tuples as
    /// degraded drops), zeroes its queue gauge, and marks it so later
    /// routed tuples are counted instead of sent. Its last checkpoint is
    /// still salvaged at [`ShardedEngine::finish`].
    fn degrade(&mut self, shard: usize) {
        self.reap(shard);
        self.seats[shard].degraded = true;
        self.telemetry.degraded_shards.fetch_add(1, Relaxed);
        let msgs: Vec<Msg> = self.seats[shard]
            .backlog
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .drain(..)
            .collect();
        let mut dropped = 0u64;
        for msg in msgs {
            if let Msg::Batch { pkts, .. } = msg {
                dropped += pkts.len() as u64;
                if let Ok(buf) = Arc::try_unwrap(pkts) {
                    self.pool.put(buf);
                }
            }
        }
        self.telemetry.dropped_degraded.fetch_add(dropped, Relaxed);
        self.telemetry.shards()[shard].queue_depth.store(0, Relaxed);
    }

    /// Graceful drain: seals ingress, flushes every staged tuple, waits up
    /// to `deadline` for all shard queues to empty, then finishes the run
    /// and reports exactly what the shutdown cost. A shard still lagging at
    /// the deadline is abandoned — its worker retired, its state salvaged
    /// from the last checkpoint — rather than blocking shutdown forever,
    /// and the loss shows up in the report's `per_shard_lag` /
    /// `unflushed_epochs` instead of vanishing.
    ///
    /// Coordinator mode only: callers running taken ingress handles on
    /// their own threads must [`IngressHandle::finish`] them first.
    pub fn drain(&mut self, deadline: Duration) -> (Vec<Row>, DrainReport) {
        let mut report = DrainReport {
            per_shard_lag: vec![0; self.n_shards()],
            ..DrainReport::default()
        };
        if self.done {
            return (Vec::new(), report);
        }
        // Seal: push every staged tuple into the rings. Errors here mean a
        // shard is already beyond saving; the finish below salvages it.
        let flushed = if self.fabric.is_some() {
            self.flush_fab_chunk()
        } else {
            self.sync_watermark()
        };
        if let Err(e) = flushed {
            eprintln!("fd-drain: final flush failed: {e}");
        }
        let give_up = Instant::now() + deadline;
        loop {
            let lag: u64 = (0..self.n_shards())
                .map(|s| self.telemetry.shards()[s].queue_depth.load(Relaxed))
                .sum();
            if lag == 0 {
                break;
            }
            if Instant::now() >= give_up {
                report.deadline_expired = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        if report.deadline_expired {
            for shard in 0..self.n_shards() {
                let lag = self.telemetry.shards()[shard].queue_depth.load(Relaxed);
                if lag > 0 {
                    report.per_shard_lag[shard] = lag;
                    report.unflushed_epochs += lag;
                    self.abandon_shard(shard);
                }
            }
        }
        let rows = self.finish();
        report.shed_tuples = self.telemetry.shed_tuples.load(Relaxed);
        report.shed_batches = self.telemetry.shed_batches.load(Relaxed);
        report.wedged_respawns = self.telemetry.wedged_respawns.load(Relaxed);
        (rows, report)
    }

    /// Abandons a shard that failed to drain by its deadline: retires the
    /// worker's lease, parks the thread as a zombie (it may be blocked on
    /// a full downstream or genuinely wedged), and degrades the shard so
    /// [`ShardedEngine::finish`] salvages its last checkpoint. The join
    /// result of an already-exited worker is deliberately discarded —
    /// folding it *and* the checkpoint salvage would double-count.
    fn abandon_shard(&mut self, shard: usize) {
        if let Some(fab) = self.fabric.as_ref().map(Arc::clone) {
            let sh = &fab.shards[shard];
            if sh.degraded.load(Relaxed) {
                return;
            }
            let mut inner = sh.inner.lock().unwrap_or_else(PoisonError::into_inner);
            inner.generation += 1;
            inner.lease.retire();
            if let Some(handle) = inner.worker.take() {
                if handle.is_finished() {
                    let _ = handle.join();
                } else {
                    inner.zombies.push(handle);
                }
            }
            fab.degrade_locked(shard, &mut inner);
            return;
        }
        if self.seats[shard].degraded {
            return;
        }
        self.seats[shard].lease.retire();
        self.senders[shard] = None;
        if let Some(handle) = self.workers[shard].take() {
            if handle.is_finished() {
                let _ = handle.join();
            } else {
                self.zombies.push(handle);
            }
        }
        self.degrade(shard);
    }

    /// Ends the stream: flushes all shards, merges their closed buckets,
    /// and returns every row in (bucket, key) order — the same order the
    /// single-threaded engine emits. Subsequent calls return no rows.
    ///
    /// A worker found dead here is put through the same supervision
    /// protocol as one found dead mid-stream: restore, replay, bounded
    /// retries, then degradation with checkpoint salvage.
    pub fn finish(&mut self) -> Vec<Row> {
        if self.done {
            return Vec::new();
        }
        self.done = true;
        if self.fabric.is_some() {
            return self.finish_fabric();
        }
        // Flush staged batches and broadcast the final watermark, so every
        // worker's applied-watermark gauge catches up to the dispatcher
        // (post-run watermark lag reads 0, not the un-broadcast remainder).
        self.sync_watermark().unwrap_or_else(|e| panic!("{e}"));
        // Close every channel first so all workers drain in parallel.
        for tx in self.senders.iter_mut() {
            *tx = None;
        }
        let mut combined: BTreeMap<(u64, u64), Box<dyn Aggregator>> = BTreeMap::new();
        for shard in 0..self.n_shards() {
            while let Some(handle) = self.workers[shard].take() {
                match handle.join() {
                    Ok((closed, stats)) => {
                        self.shard_stats[shard] = stats;
                        fold_closed(&mut combined, closed);
                        break;
                    }
                    Err(payload) => {
                        self.telemetry.worker_panics.fetch_add(1, Relaxed);
                        eprintln!(
                            "fd-shard-{shard}: worker panicked: {}",
                            panic_message(&payload)
                        );
                        let recovered = self.supervising()
                            && !self.seats[shard].slot.unsupported()
                            && self.try_restart(shard);
                        if recovered {
                            // Close the fresh worker's channel: it drains
                            // the replay and exits with its state, which
                            // the next join collects.
                            self.senders[shard] = None;
                        } else {
                            self.degrade(shard);
                        }
                    }
                }
            }
            if let Some((closed, stats)) = self.seats[shard].early_exit.take() {
                self.shard_stats[shard] = stats;
                fold_closed(&mut combined, closed);
            }
            if self.seats[shard].degraded {
                // Salvage the degraded shard's last checkpoint: everything
                // up to it survives in the final result.
                if let Some((_seq, bytes)) = self.seats[shard].slot.load() {
                    if let Ok(mut e) = Engine::restore(self.worker_query.clone(), &bytes) {
                        let closed = e.finish_state();
                        self.shard_stats[shard] = e.stats();
                        fold_closed(&mut combined, closed);
                    }
                }
            }
        }
        reap_zombies(&mut self.zombies);
        // All workers have drained and published their last checkpoints:
        // flush the WAL, persist what the last commit covers, and commit a
        // final manifest, so a cleanly-finished store recovers instantly.
        if let Some(d) = self.durable.as_mut() {
            d.finish();
        }
        self.emit_rows(combined)
    }

    /// Fabric-mode finish: deal the per-tuple remainder, finish the
    /// coordinator's handles (parallel callers have already finished or
    /// dropped theirs), join every shard worker, and merge — applying the
    /// same dead-worker protocol as the single dispatcher's finish.
    fn finish_fabric(&mut self) -> Vec<Row> {
        self.flush_fab_chunk().unwrap_or_else(|e| panic!("{e}"));
        let fab = Arc::clone(self.fabric.as_ref().expect("fabric mode"));
        for h in std::mem::take(&mut self.fab_handles) {
            h.finish();
        }
        let mut combined: BTreeMap<(u64, u64), Box<dyn Aggregator>> = BTreeMap::new();
        for (shard, sh) in fab.shards.iter().enumerate() {
            loop {
                let handle = sh
                    .inner
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .worker
                    .take();
                let Some(handle) = handle else { break };
                match handle.join() {
                    Ok((closed, stats)) => {
                        self.shard_stats[shard] = stats;
                        fold_closed(&mut combined, closed);
                        break;
                    }
                    Err(payload) => {
                        self.telemetry.worker_panics.fetch_add(1, Relaxed);
                        eprintln!(
                            "fd-shard-{shard}: worker panicked: {}",
                            panic_message(&payload)
                        );
                        if !self.supervising() {
                            break;
                        }
                        // Same protocol as mid-stream: bounded respawn
                        // (the fresh worker replays the backlog tail and
                        // exits — every producer's ring is already
                        // closed), else degrade with salvage below.
                        let mut inner = sh.inner.lock().unwrap_or_else(PoisonError::into_inner);
                        fab.recover_locked(shard, &mut inner);
                    }
                }
            }
            let early = sh
                .inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .early_exit
                .take();
            if let Some((closed, stats)) = early {
                self.shard_stats[shard] = stats;
                fold_closed(&mut combined, closed);
            }
            if sh.degraded.load(Relaxed) {
                if let Some((_seq, bytes)) = sh.slot.load() {
                    if let Ok(mut e) = Engine::restore(self.worker_query.clone(), &bytes) {
                        let closed = e.finish_state();
                        self.shard_stats[shard] = e.stats();
                        fold_closed(&mut combined, closed);
                    }
                }
            }
            let mut zombies = std::mem::take(
                &mut sh
                    .inner
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .zombies,
            );
            reap_zombies(&mut zombies);
        }
        reap_zombies(&mut self.zombies);
        if let Some(d) = self.durable.as_mut() {
            d.finish();
        }
        // Fold the producers' admission counters into the engine stats:
        // the fabric must report the same aggregate counts the single
        // dispatcher would have.
        {
            let out = fab.stats_out.lock().unwrap_or_else(PoisonError::into_inner);
            for s in out.iter().flatten() {
                self.stats.tuples_in += s.tuples_in;
                self.stats.filtered += s.filtered;
                self.stats.late_drops += s.late_drops;
            }
        }
        for t in self.telemetry.producers() {
            self.watermark = self.watermark.max(t.watermark_us.load(Relaxed));
        }
        self.emit_rows(combined)
    }

    /// Evaluates the merged `(bucket, key)` states into rows and records
    /// the final counters unconditionally (even with live telemetry off),
    /// so a post-run snapshot always agrees exactly with `stats()`.
    fn emit_rows(&mut self, combined: BTreeMap<(u64, u64), Box<dyn Aggregator>>) -> Vec<Row> {
        let bucket_micros = self.query.bucket_micros;
        let mut last_bucket = None;
        let rows: Vec<Row> = combined
            .into_iter()
            .map(|((bucket, key), agg)| {
                if last_bucket != Some(bucket) {
                    last_bucket = Some(bucket);
                    self.stats.buckets_closed += 1;
                }
                Row {
                    bucket_start: bucket * bucket_micros,
                    key,
                    value: agg.emit(secs((bucket + 1) * bucket_micros)),
                }
            })
            .collect();
        self.stats.rows_out = rows.len() as u64;
        self.telemetry
            .tuples_in
            .store(self.stats.tuples_in, Relaxed);
        self.telemetry.filtered.store(self.stats.filtered, Relaxed);
        self.telemetry
            .late_drops
            .store(self.stats.late_drops, Relaxed);
        self.telemetry
            .dispatcher_watermark
            .store(self.watermark, Relaxed);
        self.telemetry.rows_out.store(self.stats.rows_out, Relaxed);
        self.telemetry
            .buckets_closed
            .store(self.stats.buckets_closed, Relaxed);
        rows
    }

    /// Runs a whole stream through the query and returns all rows.
    /// Chunks the stream through the columnar fast path.
    pub fn run(&mut self, stream: impl IntoIterator<Item = Packet>) -> Vec<Row> {
        let mut buf = Vec::with_capacity(self.batch_size);
        for pkt in stream {
            buf.push(pkt);
            if buf.len() == self.batch_size {
                self.process_packets(&buf);
                buf.clear();
            }
        }
        self.process_packets(&buf);
        self.finish()
    }

    /// Combined execution counters: dispatcher admission counts plus the
    /// shard-side LFTA evictions, and the combiner's row/bucket counts.
    /// Shard-side numbers are folded in by [`ShardedEngine::finish`].
    pub fn stats(&self) -> EngineStats {
        let shards = crate::metrics::combine_shard_stats(&self.shard_stats);
        let mut stats = EngineStats {
            lfta_evictions: shards.lfta_evictions,
            ..self.stats
        };
        if !self.done {
            // Fabric coordinator mode mid-run: admission lives on the
            // handles; fold their counters in. (After finish they are
            // folded into self.stats already; in taken-handles mode the
            // caller reads the handles' own stats until finish.)
            for h in &self.fab_handles {
                stats.tuples_in += h.stats.tuples_in;
                stats.filtered += h.stats.filtered;
                stats.late_drops += h.stats.late_drops;
            }
        }
        stats
    }

    /// Raw per-shard engine counters (populated by
    /// [`ShardedEngine::finish`]).
    pub fn per_shard_stats(&self) -> &[EngineStats] {
        &self.shard_stats
    }
}

impl Drop for ShardedEngine {
    fn drop(&mut self) {
        // Close channels and reap workers so an abandoned engine doesn't
        // leak threads. A worker panic must not be swallowed silently: we
        // can't propagate it from drop (we may already be unwinding), so
        // count it in the telemetry registry and log the payload.
        for tx in self.senders.iter_mut() {
            *tx = None;
        }
        for (shard, slot) in self.workers.iter_mut().enumerate() {
            if let Some(handle) = slot.take() {
                if let Err(payload) = handle.join() {
                    self.telemetry.worker_panics.fetch_add(1, Relaxed);
                    eprintln!(
                        "fd-shard-{shard}: worker panicked: {}",
                        panic_message(&payload)
                    );
                }
            }
        }
        if let Some(fab) = self.fabric.take() {
            // Dropping the coordinator handles closes their rings
            // (IngressHandle::drop); close any recovery-installed senders
            // too, then join the fabric workers.
            self.fab_handles.clear();
            for (shard, sh) in fab.shards.iter().enumerate() {
                for slot in &sh.senders {
                    *slot.lock().unwrap_or_else(PoisonError::into_inner) = None;
                }
                let (handle, mut zombies) = {
                    let mut inner = sh.inner.lock().unwrap_or_else(PoisonError::into_inner);
                    (inner.worker.take(), std::mem::take(&mut inner.zombies))
                };
                if let Some(handle) = handle {
                    if let Err(payload) = handle.join() {
                        self.telemetry.worker_panics.fetch_add(1, Relaxed);
                        eprintln!(
                            "fd-shard-{shard}: worker panicked: {}",
                            panic_message(&payload)
                        );
                    }
                }
                reap_zombies(&mut zombies);
            }
        }
        reap_zombies(&mut self.zombies);
    }
}

/// Joins retired (zombie) worker incarnations, giving each a short grace
/// period to notice its retired lease and exit. A thread still running
/// after the grace period is detached by dropping its handle — safe Rust
/// cannot kill it, and blocking shutdown on a genuinely wedged thread
/// would turn a shed into a hang. Join results are discarded: a retired
/// incarnation's state is stale by construction (its unapplied messages
/// were replayed to its successor).
fn reap_zombies(zombies: &mut Vec<WorkerHandle>) {
    for handle in zombies.drain(..) {
        let give_up = Instant::now() + Duration::from_millis(250);
        while !handle.is_finished() && Instant::now() < give_up {
            std::thread::sleep(Duration::from_millis(1));
        }
        if handle.is_finished() {
            let _ = handle.join();
        }
    }
}

/// Merges closed groups into the combined `(bucket, key)` map, combining
/// states that met the same group on different shards (or in different
/// worker incarnations).
fn fold_closed(combined: &mut BTreeMap<(u64, u64), Box<dyn Aggregator>>, closed: Vec<ClosedGroup>) {
    for cg in closed {
        match combined.entry((cg.bucket, cg.key)) {
            Entry::Occupied(mut e) => e.get_mut().merge_boxed(cg.agg),
            Entry::Vacant(e) => {
                e.insert(cg.agg);
            }
        }
    }
}

/// Best-effort extraction of a panic payload's message (panics carry
/// `&'static str` or `String` in practice).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "<non-string panic payload>"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregators::{count_factory, fwd_sum_factory};
    use crate::fault::FaultPlan;
    use crate::tuple::{Proto, MICROS_PER_SEC};
    use fd_core::decay::Monomial;

    fn pkt(ts_s: f64, dst_ip: u32) -> Packet {
        Packet {
            ts: (ts_s * MICROS_PER_SEC as f64) as Micros,
            src_ip: 1,
            dst_ip,
            src_port: 1000,
            dst_port: 80,
            len: 100,
            proto: Proto::Tcp,
        }
    }

    fn count_query() -> Query {
        Query::builder("count")
            .group_by(|p| p.dst_host())
            .bucket_secs(60)
            .aggregate(count_factory())
            .two_level(true)
            .lfta_slots(64)
            .build()
    }

    fn sharded(query: Query, n: usize) -> ShardedEngine {
        ShardedEngine::try_new(query, n).expect("spawn shards")
    }

    #[test]
    fn sharded_counts_match_single_threaded() {
        let stream: Vec<Packet> = (0..10_000)
            .map(|i| pkt(0.01 * i as f64, (i % 97) as u32))
            .collect();
        let single = Engine::new(count_query()).run(stream.clone());
        let rows = sharded(count_query(), 4).run(stream);
        assert_eq!(single.len(), rows.len());
        for (a, b) in single.iter().zip(&rows) {
            assert_eq!((a.bucket_start, a.key), (b.bucket_start, b.key));
            assert_eq!(a.value, b.value);
        }
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_new_still_spawns() {
        // The deprecated panicking constructor stays a thin wrapper over
        // try_new until it is removed.
        let mut e = ShardedEngine::new(count_query(), 2);
        e.process(&pkt(1.0, 1));
        assert_eq!(e.finish().len(), 1);
    }

    #[test]
    fn round_robin_merges_split_groups_exactly() {
        // Every group's state splits across all 4 shards; counts are
        // additively mergeable so the merge path must reassemble them
        // exactly.
        let stream: Vec<Packet> = (0..8_000)
            .map(|i| pkt(0.005 * i as f64, (i % 13) as u32))
            .collect();
        let single = Engine::new(count_query()).run(stream.clone());
        let rows = sharded(count_query(), 4)
            .routing(ShardBy::RoundRobin)
            .run(stream);
        assert_eq!(single.len(), rows.len());
        for (a, b) in single.iter().zip(&rows) {
            assert_eq!((a.bucket_start, a.key), (b.bucket_start, b.key));
            assert_eq!(a.value, b.value);
        }
    }

    #[test]
    fn forward_decayed_sum_shards_by_key() {
        let q = || {
            Query::builder("fwd")
                .group_by(|p| p.dst_host())
                .bucket_secs(60)
                .aggregate(fwd_sum_factory(Monomial::quadratic(), |p| p.len as f64))
                .two_level(false)
                .build()
        };
        let stream: Vec<Packet> = (0..5_000)
            .map(|i| pkt(0.03 * i as f64, (i % 31) as u32))
            .collect();
        let single = Engine::new(q()).run(stream.clone());
        let rows = sharded(q(), 4).run(stream);
        assert_eq!(single.len(), rows.len());
        for (a, b) in single.iter().zip(&rows) {
            assert_eq!((a.bucket_start, a.key), (b.bucket_start, b.key));
            assert_eq!(a.value, b.value, "key {}", a.key);
        }
    }

    #[test]
    fn late_tuples_drop_identically() {
        let mut single = Engine::new(count_query());
        let mut parallel = sharded(count_query(), 4);
        let events = [
            StreamEvent::Data(pkt(10.0, 1)),
            StreamEvent::Punctuation(130 * MICROS_PER_SEC),
            StreamEvent::Data(pkt(15.0, 1)), // late: bucket 0 closed
            StreamEvent::Data(pkt(140.0, 2)),
        ];
        for ev in &events {
            single.process_event(ev);
        }
        parallel.process_batch(&events);
        let s_rows = single.finish();
        let p_rows = parallel.finish();
        assert_eq!(s_rows.len(), p_rows.len());
        assert_eq!(single.stats().late_drops, 1);
        assert_eq!(parallel.stats().late_drops, 1);
    }

    #[test]
    fn stats_aggregate_across_shards() {
        let q = Query::builder("stats")
            .filter(|p| p.proto == Proto::Tcp)
            .group_by(|p| p.dst_host())
            .bucket_secs(60)
            .aggregate(count_factory())
            .build();
        let mut e = sharded(q, 3);
        for i in 0..300 {
            e.process(&pkt(i as f64 * 0.1, (i % 7) as u32));
        }
        let rows = e.finish();
        let stats = e.stats();
        assert_eq!(stats.tuples_in, 300);
        assert_eq!(stats.rows_out, rows.len() as u64);
        assert!(stats.buckets_closed >= 1);
        let per_shard = e.per_shard_stats();
        assert_eq!(per_shard.len(), 3);
        assert_eq!(
            per_shard.iter().map(|s| s.tuples_in).sum::<u64>(),
            300,
            "every accepted tuple lands on exactly one shard"
        );
    }

    #[test]
    fn try_new_rejects_zero_shards() {
        assert!(matches!(
            ShardedEngine::try_new(count_query(), 0),
            Err(fd_core::Error::InvalidParameter {
                name: "n_shards",
                ..
            })
        ));
    }

    #[test]
    fn finish_is_idempotent_and_drop_reaps_workers() {
        let mut e = sharded(count_query(), 2);
        e.process(&pkt(1.0, 1));
        assert_eq!(e.finish().len(), 1);
        assert!(e.finish().is_empty());
        let e2 = sharded(count_query(), 2);
        drop(e2); // must not hang or leak
    }

    #[test]
    fn key_routing_spreads_within_bound() {
        // Dense sequential keys AND power-of-two-strided keys must both
        // land within ±20% of a uniform share on every shard — the
        // strided case is exactly what a low-bits `h % n` fold fails.
        const KEYS: u64 = 100_000;
        for n_shards in [2usize, 3, 4, 8] {
            for (label, stride_shift) in [("dense", 0u32), ("strided", 12u32)] {
                let mut e = sharded(count_query(), n_shards);
                let mut counts = vec![0u64; n_shards];
                for key in 0..KEYS {
                    counts[e.route(key << stride_shift)] += 1;
                }
                let uniform = KEYS as f64 / n_shards as f64;
                for (shard, &c) in counts.iter().enumerate() {
                    let dev = (c as f64 - uniform).abs() / uniform;
                    assert!(
                        dev <= 0.20,
                        "{label} keys, {n_shards} shards: shard {shard} got {c} \
                         (uniform {uniform:.0}, deviation {:.1}%)",
                        dev * 100.0
                    );
                }
            }
        }
    }

    #[test]
    fn dropped_engine_records_worker_panic() {
        use crate::udaf::{AggValue, Aggregator, FnFactory};
        use std::any::Any;

        // An aggregator that panics when it meets the sentinel tuple.
        struct Tripwire;
        impl Aggregator for Tripwire {
            fn update(&mut self, pkt: &Packet) {
                assert!(pkt.len != 0xDEAD, "tripwire: poisoned tuple");
            }
            fn merge_boxed(&mut self, _other: Box<dyn Aggregator>) {}
            fn emit(&self, _t: f64) -> AggValue {
                AggValue::Float(0.0)
            }
            fn size_bytes(&self) -> usize {
                0
            }
            fn as_any_box(self: Box<Self>) -> Box<dyn Any> {
                self
            }
        }

        let q = Query::builder("tripwire")
            .group_by(|_| 0) // one group: everything routes to one shard
            .bucket_secs(60)
            .aggregate(FnFactory::new("tripwire", true, |_| Box::new(Tripwire)))
            .two_level(false)
            .build();
        let mut e = sharded(q, 2);
        // Exactly one batch's worth of tuples so process() itself flushes
        // the batch to the worker (no explicit punctuation: the worker
        // dies, and drop — not a send — must discover it).
        for i in 0..DEFAULT_BATCH_SIZE {
            let mut p = pkt(0.001 * i as f64, 1);
            if i == 7 {
                p.len = 0xDEAD;
            }
            e.process(&p);
        }
        let tel = Arc::clone(e.telemetry());
        drop(e); // Drop must reap the dead worker and record the panic
        assert_eq!(tel.worker_panics.load(Relaxed), 1);
    }

    #[test]
    fn batched_admission_matches_scalar_exactly() {
        // The columnar process_packets path must accept, filter and drop
        // exactly the tuples the per-tuple path does — including streams
        // where the closed boundary advances mid-batch and late tuples
        // interleave with fresh ones.
        let q = || {
            Query::builder("diff")
                .filter(|p| p.dst_port == 80)
                .group_by(|p| p.dst_host())
                .bucket_secs(60)
                .slack_secs(30.0)
                .aggregate(count_factory())
                .build()
        };
        let mut stream = Vec::new();
        for i in 0..20_000u64 {
            let mut p = pkt(i as f64 * 0.05, (i % 41) as u32);
            if i % 17 == 0 {
                p.dst_port = 443; // filtered
            }
            if i % 97 == 0 {
                p.ts = p.ts.saturating_sub(200 * MICROS_PER_SEC); // late
            }
            stream.push(p);
        }
        let mut scalar = sharded(q(), 3);
        for p in &stream {
            scalar.process(p);
        }
        let s_rows = scalar.finish();
        let mut batched = sharded(q(), 3).batch_size(256);
        let b_rows = batched.run(stream);
        let (ss, bs) = (scalar.stats(), batched.stats());
        assert_eq!(ss.tuples_in, bs.tuples_in);
        assert_eq!(ss.filtered, bs.filtered);
        assert_eq!(ss.late_drops, bs.late_drops);
        assert_eq!(s_rows.len(), b_rows.len());
        for (a, b) in s_rows.iter().zip(&b_rows) {
            assert_eq!((a.bucket_start, a.key), (b.bucket_start, b.key));
            assert_eq!(a.value, b.value, "key {}", a.key);
        }
    }

    #[test]
    fn pooled_batches_recycle_and_count_like_fresh_ones() {
        // Satellite check: batches_sent must count recycled-pool sends
        // identically to fresh sends. Route everything to one shard,
        // ship enough batches that the depth-8 ring forces the worker to
        // drain (returning buffers to the pool) while the dispatcher is
        // still flushing. Supervision off: this pins the legacy
        // worker-side recycling path.
        const BATCH: usize = 64;
        const N_BATCHES: u64 = 40;
        let q = Query::builder("pool")
            .group_by(|_| 0)
            .bucket_secs(60)
            .aggregate(count_factory())
            .two_level(false)
            .build();
        let mut e = sharded(q, 1).batch_size(BATCH).checkpoint_every(0);
        let stream: Vec<Packet> = (0..N_BATCHES * BATCH as u64)
            .map(|i| pkt(0.001 * i as f64, 1))
            .collect();
        e.run(stream);
        let snap = e.telemetry().snapshot();
        let sent: u64 = snap.shards.iter().map(|s| s.batches_sent).sum();
        assert_eq!(
            sent, N_BATCHES,
            "every batch counted once, recycled or fresh"
        );
        let pool = e.batch_pool();
        assert!(
            pool.reuses() > 0,
            "steady state must recycle buffers (allocs {}, reuses {})",
            pool.allocs(),
            pool.reuses()
        );
        assert!(
            pool.allocs() < N_BATCHES,
            "most sends must reuse pooled buffers, not allocate"
        );
    }

    #[test]
    fn supervised_trim_reclaims_batch_buffers() {
        // Under supervision the apply path can't recycle (the backlog
        // holds a clone); the worker reclaims covered batches when it
        // trims after publishing each checkpoint. Checkpoint after every
        // batch so every trim succeeds deterministically: the worker
        // releases its apply-path reference *before* publishing the
        // checkpoint seq.
        const BATCH: usize = 64;
        const N_BATCHES: u64 = 40;
        let q = Query::builder("pool")
            .group_by(|_| 0)
            .bucket_secs(60)
            .aggregate(count_factory())
            .two_level(false)
            .build();
        let mut e = sharded(q, 1)
            .batch_size(BATCH)
            .checkpoint_every(BATCH as u64);
        let stream: Vec<Packet> = (0..N_BATCHES * BATCH as u64)
            .map(|i| pkt(0.001 * i as f64, 1))
            .collect();
        e.run(stream);
        let snap = e.telemetry().snapshot();
        assert!(snap.checkpoints >= N_BATCHES / 2, "workers checkpointed");
        let pool = e.batch_pool();
        assert!(
            pool.reuses() > 0,
            "trimming must recycle buffers (allocs {}, reuses {})",
            pool.allocs(),
            pool.reuses()
        );
        assert!(pool.allocs() < N_BATCHES);
    }

    #[test]
    fn transient_worker_death_recovers_exactly() {
        // Kill shard 0 mid-stream; the supervisor restores it from its
        // checkpoint, replays the tail, and the rows come out identical
        // to an unfaulted run — with the recovery visible in telemetry.
        let stream: Vec<Packet> = (0..30_000)
            .map(|i| pkt(0.01 * i as f64, (i % 53) as u32))
            .collect();
        let clean = sharded(count_query(), 2).run(stream.clone());
        let mut e = sharded(count_query(), 2)
            .batch_size(128)
            .checkpoint_every(1_000)
            .inject_fault(FaultPlan::parse("panic:0:5000").expect("plan"));
        let rows = e.run(stream);
        assert_eq!(clean.len(), rows.len());
        for (a, b) in clean.iter().zip(&rows) {
            assert_eq!((a.bucket_start, a.key), (b.bucket_start, b.key));
            assert_eq!(a.value, b.value, "key {}", a.key);
        }
        let snap = e.telemetry().snapshot();
        assert_eq!(snap.restarts, 1, "one respawn");
        assert_eq!(snap.worker_panics, 1, "the injected death was reaped");
        assert!(snap.replayed_batches > 0, "the backlog tail was replayed");
        assert!(snap.checkpoints > 0);
        assert_eq!(snap.degraded_shards, 0);
        assert_eq!(snap.dropped_degraded, 0);
    }

    #[test]
    fn poisoned_shard_degrades_after_bounded_restarts() {
        // A permanent fault exhausts the restart budget; the shard
        // degrades, its checkpoint is salvaged, and the engine still
        // produces rows for the healthy shards.
        let stream: Vec<Packet> = (0..20_000)
            .map(|i| pkt(0.01 * i as f64, (i % 53) as u32))
            .collect();
        let mut e = sharded(count_query(), 2)
            .batch_size(128)
            .checkpoint_every(1_000)
            .max_restarts(2)
            .inject_fault(FaultPlan::parse("poison:1:4000").expect("plan"));
        let rows = e.run(stream);
        assert!(!rows.is_empty(), "healthy shard still emits");
        let snap = e.telemetry().snapshot();
        assert_eq!(snap.restarts, 2, "budget spent exactly");
        assert_eq!(snap.degraded_shards, 1);
        assert!(
            snap.dropped_degraded > 0,
            "post-degradation tuples are counted dropped"
        );
        assert_eq!(snap.worker_panics, 3, "initial death + 2 failed respawns");
    }

    #[test]
    fn unsupervised_dead_worker_is_a_hard_error() {
        // checkpoint_every(0) restores the legacy contract: try_process
        // reports WorkerLost, process panics.
        let stream: Vec<Packet> = (0..4_000)
            .map(|i| pkt(0.01 * i as f64, (i % 7) as u32))
            .collect();
        let mut e = sharded(count_query(), 1)
            .batch_size(64)
            .checkpoint_every(0)
            .inject_fault(FaultPlan::parse("panic:0:100").expect("plan"));
        let mut lost = None;
        for p in &stream {
            if let Err(err) = e.try_process(p) {
                lost = Some(err);
                break;
            }
        }
        assert!(
            matches!(lost, Some(fd_core::Error::WorkerLost { shard: 0 })),
            "expected WorkerLost, got {lost:?}"
        );
    }

    #[test]
    fn batch_size_builder_rejects_zero_and_late_calls() {
        let e = sharded(count_query(), 2).batch_size(16);
        drop(e);
        assert!(matches!(
            sharded(count_query(), 2).try_batch_size(0),
            Err(fd_core::Error::InvalidParameter {
                name: "batch_size",
                ..
            })
        ));
        let r = std::panic::catch_unwind(|| {
            let _ = sharded(count_query(), 2).batch_size(0);
        });
        assert!(r.is_err(), "zero batch size must panic");
    }

    #[test]
    fn telemetry_final_counters_match_stats() {
        let q = Query::builder("tel")
            .filter(|p| p.proto == Proto::Tcp)
            .group_by(|p| p.dst_host())
            .bucket_secs(60)
            .aggregate(count_factory())
            .build();
        let mut e = sharded(q, 3);
        let mut events = Vec::new();
        for i in 0..500 {
            let mut p = pkt(i as f64 * 0.5, (i % 11) as u32);
            if i % 50 == 0 {
                p.proto = Proto::Udp; // filtered out
            }
            events.push(StreamEvent::Data(p));
        }
        events.push(StreamEvent::Punctuation(400 * MICROS_PER_SEC));
        events.push(StreamEvent::Data(pkt(10.0, 1))); // late: dropped
        e.process_batch(&events);
        let rows = e.finish();
        let stats = e.stats();
        let snap = e.telemetry().snapshot();
        assert_eq!(snap.tuples_in, stats.tuples_in);
        assert_eq!(snap.filtered, stats.filtered);
        assert_eq!(snap.late_drops, stats.late_drops);
        assert_eq!(snap.rows_out, rows.len() as u64);
        assert_eq!(snap.buckets_closed, stats.buckets_closed);
        assert!(stats.late_drops >= 1);
        assert_eq!(snap.worker_panics, 0);
        // Every queue drained, every shard caught up to the dispatcher.
        for shard in &snap.shards {
            assert_eq!(shard.queue_depth, 0);
            assert_eq!(shard.watermark_lag_us, 0);
        }
        assert_eq!(
            snap.shards.iter().map(|s| s.tuples_processed).sum::<u64>(),
            stats.tuples_in - stats.filtered - stats.late_drops
        );
    }

    // -- Multi-producer ingress fabric ------------------------------------

    #[test]
    fn fabric_coordinator_matches_single_threaded() {
        // The producer-seq determinism rule in action: for every P, the
        // coordinator deals chunks round-robin and each worker drains
        // producers in seq order, so keyed-routing rows are bit-identical
        // to the single-threaded engine.
        let stream: Vec<Packet> = (0..12_000)
            .map(|i| pkt(0.01 * i as f64, (i % 97) as u32))
            .collect();
        let single = Engine::new(count_query()).run(stream.clone());
        for producers in [1usize, 2, 3] {
            let mut e = sharded(count_query(), 4)
                .batch_size(256)
                .try_producers(producers)
                .expect("fabric");
            let rows = e.run(stream.clone());
            assert_eq!(single.len(), rows.len(), "P={producers}");
            for (a, b) in single.iter().zip(&rows) {
                assert_eq!((a.bucket_start, a.key), (b.bucket_start, b.key));
                assert_eq!(a.value, b.value, "P={producers} key {}", a.key);
            }
            assert_eq!(e.stats().tuples_in, stream.len() as u64);
            assert_eq!(e.n_producers(), producers);
        }
    }

    #[test]
    fn fabric_round_robin_matches_single_dispatcher() {
        let stream: Vec<Packet> = (0..8_000)
            .map(|i| pkt(0.005 * i as f64, (i % 13) as u32))
            .collect();
        let single = Engine::new(count_query()).run(stream.clone());
        let mut e = sharded(count_query(), 4)
            .routing(ShardBy::RoundRobin)
            .batch_size(128)
            .try_producers(2)
            .expect("fabric");
        let rows = e.run(stream);
        assert_eq!(single.len(), rows.len());
        for (a, b) in single.iter().zip(&rows) {
            assert_eq!((a.bucket_start, a.key), (b.bucket_start, b.key));
            assert_eq!(a.value, b.value, "key {}", a.key);
        }
    }

    #[test]
    fn fabric_parallel_handles_match_single_threaded() {
        // True parallel ingress: P threads each own an IngressHandle and
        // feed an interleaved slice of the stream. Count aggregation is
        // order-insensitive within a bucket and the slices stay within
        // slack of each other, so the rows still match the single-threaded
        // run exactly.
        const P: usize = 3;
        let q = || {
            Query::builder("par")
                .group_by(|p| p.dst_host())
                .bucket_secs(60)
                .slack_secs(30.0)
                .aggregate(count_factory())
                .two_level(true)
                .lfta_slots(64)
                .build()
        };
        let stream: Vec<Packet> = (0..15_000)
            .map(|i| pkt(0.01 * i as f64, (i % 53) as u32))
            .collect();
        let single = Engine::new(q()).run(stream.clone());
        let mut e = sharded(q(), 4)
            .batch_size(128)
            .try_producers(P)
            .expect("fabric");
        let handles = e.take_ingress_handles();
        let slices: Vec<Vec<Packet>> = (0..P)
            .map(|p| stream.iter().skip(p).step_by(P).copied().collect())
            .collect();
        let joined: Vec<std::thread::JoinHandle<EngineStats>> = handles
            .into_iter()
            .zip(slices)
            .map(|(mut h, slice)| {
                std::thread::spawn(move || {
                    for chunk in slice.chunks(256) {
                        h.ingest(chunk).expect("ingest");
                    }
                    h.finish()
                })
            })
            .collect();
        let mut fed = 0u64;
        for j in joined {
            fed += j.join().expect("producer thread").tuples_in;
        }
        assert_eq!(fed, stream.len() as u64);
        let rows = e.finish();
        assert_eq!(single.len(), rows.len());
        for (a, b) in single.iter().zip(&rows) {
            assert_eq!((a.bucket_start, a.key), (b.bucket_start, b.key));
            assert_eq!(a.value, b.value, "key {}", a.key);
        }
        assert_eq!(e.stats().tuples_in, stream.len() as u64);
    }

    #[test]
    fn fabric_transient_worker_death_recovers_exactly() {
        // Same contract as the single-dispatcher supervisor: kill a shard
        // mid-stream under the fabric and the checkpoint + per-producer
        // backlog replay restores it bit-identically.
        let stream: Vec<Packet> = (0..30_000)
            .map(|i| pkt(0.01 * i as f64, (i % 53) as u32))
            .collect();
        let clean = sharded(count_query(), 2).run(stream.clone());
        let mut e = sharded(count_query(), 2)
            .batch_size(128)
            .checkpoint_every(1_000)
            .inject_fault(FaultPlan::parse("panic:0:5000").expect("plan"))
            .try_producers(2)
            .expect("fabric");
        let rows = e.run(stream);
        assert_eq!(clean.len(), rows.len());
        for (a, b) in clean.iter().zip(&rows) {
            assert_eq!((a.bucket_start, a.key), (b.bucket_start, b.key));
            assert_eq!(a.value, b.value, "key {}", a.key);
        }
        let snap = e.telemetry().snapshot();
        assert_eq!(snap.restarts, 1, "one respawn");
        assert_eq!(snap.worker_panics, 1);
        assert!(snap.replayed_batches > 0, "backlog tail was replayed");
        assert_eq!(snap.degraded_shards, 0);
    }

    #[test]
    fn fabric_pools_recycle_per_producer() {
        // Satellite: pool capacity scales with producers × shards and the
        // recycling hit-rate holds up under the fabric — visible through
        // the per-producer pool telemetry counters.
        const BATCH: usize = 64;
        const N: u64 = 10_000;
        let stream: Vec<Packet> = (0..N)
            .map(|i| pkt(0.001 * i as f64, (i % 7) as u32))
            .collect();
        let mut e = sharded(count_query(), 2)
            .batch_size(BATCH)
            .try_producers(2)
            .expect("fabric");
        e.run(stream);
        let snap = e.telemetry().snapshot();
        assert_eq!(snap.producers.len(), 2);
        let reuses: u64 = snap.producers.iter().map(|p| p.pool_reuses).sum();
        let allocs: u64 = snap.producers.iter().map(|p| p.pool_allocs).sum();
        assert!(
            reuses > 0,
            "steady state must recycle buffers (allocs {allocs}, reuses {reuses})"
        );
        assert!(
            allocs < reuses,
            "most epochs must reuse pooled buffers (allocs {allocs}, reuses {reuses})"
        );
        for (p, prod) in snap.producers.iter().enumerate() {
            assert!(prod.epochs_sent > 0, "producer {p} sealed epochs");
            for (s, depth) in prod.ring_depth.iter().enumerate() {
                assert_eq!(*depth, 0, "ring ({p},{s}) drained");
            }
        }
    }

    #[test]
    fn fabric_admission_matches_scalar_exactly() {
        // Handle-local admission (filter, late-drop, watermark advance)
        // must reproduce the dispatcher's columnar path decisions exactly.
        let q = || {
            Query::builder("diff")
                .filter(|p| p.dst_port == 80)
                .group_by(|p| p.dst_host())
                .bucket_secs(60)
                .slack_secs(30.0)
                .aggregate(count_factory())
                .build()
        };
        let mut stream = Vec::new();
        for i in 0..20_000u64 {
            let mut p = pkt(i as f64 * 0.05, (i % 41) as u32);
            if i % 17 == 0 {
                p.dst_port = 443; // filtered
            }
            if i % 97 == 0 {
                p.ts = p.ts.saturating_sub(200 * MICROS_PER_SEC); // late
            }
            stream.push(p);
        }
        let mut scalar = sharded(q(), 3);
        for p in &stream {
            scalar.process(p);
        }
        let s_rows = scalar.finish();
        let mut fab = sharded(q(), 3)
            .batch_size(256)
            .try_producers(2)
            .expect("fabric");
        let f_rows = fab.run(stream);
        let (ss, fs) = (scalar.stats(), fab.stats());
        assert_eq!(ss.tuples_in, fs.tuples_in);
        assert_eq!(ss.filtered, fs.filtered);
        assert_eq!(ss.late_drops, fs.late_drops);
        assert_eq!(s_rows.len(), f_rows.len());
        for (a, b) in s_rows.iter().zip(&f_rows) {
            assert_eq!((a.bucket_start, a.key), (b.bucket_start, b.key));
            assert_eq!(a.value, b.value, "key {}", a.key);
        }
    }

    #[test]
    fn try_producers_rejects_zero_and_finish_is_idempotent() {
        assert!(matches!(
            sharded(count_query(), 2).try_producers(0),
            Err(fd_core::Error::InvalidParameter {
                name: "producers",
                ..
            })
        ));
        let mut e = sharded(count_query(), 2).try_producers(2).expect("fabric");
        e.process(&pkt(1.0, 1));
        assert_eq!(e.finish().len(), 1);
        assert!(e.finish().is_empty());
        // Dropping a never-finished fabric engine must not hang or leak.
        let e2 = sharded(count_query(), 2).try_producers(3).expect("fabric");
        drop(e2);
        // Dropping taken handles without finish() must not hang either.
        let mut e3 = sharded(count_query(), 2).try_producers(2).expect("fabric");
        let handles = e3.take_ingress_handles();
        drop(handles);
        drop(e3);
    }

    fn fwd_query() -> Query {
        Query::builder("fwd")
            .group_by(|p| p.dst_host())
            .bucket_secs(60)
            .aggregate(fwd_sum_factory(Monomial::quadratic(), |p| p.len as f64))
            .two_level(false)
            .build()
    }

    #[test]
    fn try_overload_rejects_subsample_for_unscalable_aggregates() {
        // Undecayed count(*) refuses Horvitz–Thompson reweighting, so the
        // builder must reject Subsample for it at configuration time …
        let cfg = OverloadConfig {
            policy: ShedPolicy::Subsample { target_rate: 0.5 },
            ..OverloadConfig::default()
        };
        assert!(matches!(
            sharded(count_query(), 2).try_overload(cfg.clone()),
            Err(fd_core::Error::InvalidParameter {
                name: "shed_policy",
                ..
            })
        ));
        // … while a decayed linear aggregate accepts it, and the lossless
        // policies are accepted for any aggregate.
        assert!(sharded(fwd_query(), 2).try_overload(cfg).is_ok());
        let block = OverloadConfig::default();
        assert!(sharded(count_query(), 2).try_overload(block).is_ok());
    }

    #[test]
    fn default_block_policy_sheds_nothing() {
        let stream: Vec<Packet> = (0..5_000)
            .map(|i| pkt(0.01 * i as f64, (i % 13) as u32))
            .collect();
        let single = Engine::new(count_query()).run(stream.clone());
        let mut e = sharded(count_query(), 3);
        let rows = e.run(stream);
        assert_eq!(single.len(), rows.len());
        let snap = e.telemetry().snapshot();
        assert_eq!(snap.shed_tuples, 0);
        assert_eq!(snap.shed_batches, 0);
        assert_eq!(snap.wedged_respawns, 0);
    }

    #[test]
    fn drop_oldest_sheds_bounded_and_completes_under_slow_shard() {
        // One shard, deliberately slow worker (10 ms per batch), 2 ms send
        // deadline: the ring fills, and DropOldest must displace old
        // batches instead of stalling ingress — visibly, in telemetry.
        let stream: Vec<Packet> = (0..1_280)
            .map(|i| pkt(0.001 * i as f64, (i % 5) as u32))
            .collect();
        let cfg = OverloadConfig {
            policy: ShedPolicy::DropOldest,
            send_deadline: Duration::from_millis(2),
            ..OverloadConfig::default()
        };
        let started = Instant::now();
        let mut e = sharded(count_query(), 1)
            .batch_size(16)
            .try_overload(cfg)
            .expect("overload config")
            .inject_fault(FaultPlan::parse("slow:0:10").expect("plan"));
        let rows = e.run(stream);
        assert!(!rows.is_empty(), "shedding must not lose whole buckets");
        let snap = e.telemetry().snapshot();
        assert!(snap.shed_batches > 0, "ring pressure must displace batches");
        assert!(
            snap.shed_tuples >= snap.shed_batches,
            "batches carry tuples"
        );
        assert_eq!(snap.wedged_respawns, 0, "slow is not wedged");
        assert_eq!(snap.degraded_shards, 0);
        // 80 batches at 10 ms each would take 800 ms fully blocked; the
        // sheds must buy a visibly bounded ingress stall.
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "DropOldest must bound the run"
        );
    }

    #[test]
    fn drain_on_healthy_engine_reports_clean() {
        let stream: Vec<Packet> = (0..3_000)
            .map(|i| pkt(0.01 * i as f64, (i % 7) as u32))
            .collect();
        let single = Engine::new(count_query()).run(stream.clone());
        let mut e = sharded(count_query(), 2);
        for p in &stream {
            e.process(p);
        }
        let (rows, report) = e.drain(Duration::from_secs(10));
        assert_eq!(single.len(), rows.len());
        assert!(!report.deadline_expired);
        assert!(!report.data_lost());
        assert_eq!(report.unflushed_epochs, 0);
        assert!(report.per_shard_lag.iter().all(|&l| l == 0));
        // A second drain on a finished engine is a no-op.
        let (rows2, report2) = e.drain(Duration::from_secs(1));
        assert!(rows2.is_empty());
        assert!(!report2.data_lost());
    }

    #[test]
    fn watchdog_respawns_wedged_worker_losslessly() {
        // The worker wedges (spins, no crash) at tuple 64. Supervision's
        // panic path never fires; only the watchdog can see it: ring full
        // past the deadline + stale lease. The respawned incarnation
        // replays the backlog, so the result is bit-identical to a clean
        // run under the lossless Block policy.
        let stream: Vec<Packet> = (0..4_000)
            .map(|i| pkt(0.002 * i as f64, (i % 11) as u32))
            .collect();
        let clean = Engine::new(count_query()).run(stream.clone());
        let cfg = OverloadConfig {
            send_deadline: Duration::from_millis(5),
            lease: Duration::from_millis(50),
            ..OverloadConfig::default()
        };
        let mut e = sharded(count_query(), 1)
            .batch_size(16)
            .try_overload(cfg)
            .expect("overload config")
            .inject_fault(FaultPlan::parse("wedge:0:64").expect("plan"));
        let rows = e.run(stream);
        assert_eq!(clean.len(), rows.len());
        for (a, b) in clean.iter().zip(&rows) {
            assert_eq!((a.bucket_start, a.key), (b.bucket_start, b.key));
            assert_eq!(a.value, b.value, "key {}", a.key);
        }
        let snap = e.telemetry().snapshot();
        assert_eq!(snap.wedged_respawns, 1, "exactly one wedge detected");
        assert_eq!(snap.restarts, 1, "respawn spends a restart");
        assert_eq!(snap.worker_panics, 0, "a wedge is not a panic");
        assert_eq!(snap.degraded_shards, 0);
        assert_eq!(snap.shed_tuples, 0, "Block never sheds");
    }
}
