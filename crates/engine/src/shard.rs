//! Sharded parallel execution: one query, N worker threads.
//!
//! Forward decay makes stream summaries *mergeable* — the numerator
//! `g(t_i − L)` of every weight is frozen at arrival, so two partial
//! summaries over disjoint substreams with the same landmark combine into
//! the summary of their union (Section VI-B of the paper: "distributed
//! computation … each site maintains a summary of its local stream").
//! [`ShardedEngine`] exploits exactly that: it hash-partitions the tuple
//! stream across `n_shards` worker threads, each running a full
//! single-threaded [`Engine`] (its own LFTA + HFTA) over its substream,
//! and combines the per-shard closed buckets with
//! [`Aggregator::merge_boxed`] at the end.
//!
//! ## Semantics
//!
//! The dispatcher (the caller's thread) replicates the single-threaded
//! engine's admission logic *globally*: selection, the late-tuple check
//! against closed buckets, and the watermark advance all happen before a
//! tuple is routed, so a tuple is accepted or dropped by the sharded
//! engine exactly when the single-threaded engine would accept or drop
//! it. Worker watermarks are kept in sync by broadcasting the global
//! watermark as a punctuation after every batch, which also makes bucket
//! closing deterministic across runs.
//!
//! Workers run in *state mode* ([`Engine::keep_closed_state`]): a closed
//! bucket yields raw [`ClosedGroup`] aggregation state rather than
//! emitted rows. [`ShardedEngine::finish`] folds all shards' groups into
//! one `BTreeMap` keyed by `(bucket, key)` — merging states that met the
//! same group on different shards — and only then evaluates each group at
//! its bucket end, producing rows in the same (bucket, key) order as the
//! single-threaded engine.
//!
//! ## Routing
//!
//! [`ShardBy::Key`] (the default) sends every tuple of a group to the
//! same shard, so group states never split and results are *identical*
//! to the single-threaded engine for every aggregator — this is the mode
//! the equivalence tests pin down. [`ShardBy::RoundRobin`] spreads each
//! group across all shards and relies on the merge path; it matches the
//! single-threaded engine exactly for the exactly-mergeable aggregates
//! (counts, sums — Theorem 1 state is a pair of scalars that add), and
//! within approximation bounds for the sketch/sampler summaries.

use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::sync::atomic::Ordering::Relaxed;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use crate::engine::{ClosedGroup, Engine, EngineStats, Row, StreamEvent};
use crate::spsc::{ring, BatchPool, RingSender};
use crate::telemetry::EngineTelemetry;
use crate::tuple::{secs, Micros, Packet};
use crate::udaf::{Aggregator, Query};

/// How the dispatcher assigns accepted tuples to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardBy {
    /// Hash of the group key: each group lives wholly on one shard, so
    /// sharded results are identical to the single-threaded engine for
    /// every aggregator.
    #[default]
    Key,
    /// Strict rotation: each group's state splits across all shards and
    /// is re-assembled by merging — the paper's distributed-computation
    /// scenario. Exact for additively-mergeable aggregates (count/sum),
    /// approximate within summary guarantees otherwise.
    RoundRobin,
}

/// Messages from the dispatcher to a worker. Batches carry their send
/// instant so the worker can report dispatch-to-apply latency.
enum Msg {
    Batch(Vec<Packet>, Instant),
    Punctuate(Micros),
}

/// Per-shard ring depth (in batches) before the dispatcher blocks.
const CHANNEL_DEPTH: usize = 8;
/// Default tuples buffered per shard before an automatic ring send;
/// override with [`ShardedEngine::batch_size`] (CLI: `--batch`).
pub const DEFAULT_BATCH_SIZE: usize = 1024;

/// A parallel instance of one continuous query across N worker threads.
///
/// ```
/// use fd_engine::prelude::*;
/// use fd_core::decay::Monomial;
///
/// let query = Query::builder("decayed_traffic")
///     .group_by(|p| p.dst_key())
///     .bucket_secs(60)
///     .aggregate(fwd_sum_factory(Monomial::quadratic(), |p| p.len as f64))
///     .build();
/// let mut sharded = ShardedEngine::new(query, 4);
/// # let pkt = Packet { ts: 1_000_000, src_ip: 1, dst_ip: 2, src_port: 3,
/// #                    dst_port: 80, len: 100, proto: Proto::Tcp };
/// sharded.process_batch(&[StreamEvent::Data(pkt)]);
/// let rows = sharded.finish();
/// assert_eq!(rows.len(), 1);
/// ```
pub struct ShardedEngine {
    query: Query,
    routing: ShardBy,
    senders: Vec<RingSender<Msg>>,
    workers: Vec<JoinHandle<(Vec<ClosedGroup>, EngineStats)>>,
    /// Per-shard staging buffers; swapped against [`Self::pool`] buffers
    /// on flush, so steady-state dispatch never allocates.
    pending: Vec<Vec<Packet>>,
    /// Recycled batch buffers, returned by workers after draining.
    pool: BatchPool<Packet>,
    /// Tuples staged per shard before an automatic flush.
    batch_size: usize,
    /// Scratch for segmenting [`StreamEvent`] runs, reused across calls.
    run_buf: Vec<Packet>,
    rr: usize,
    watermark: Micros,
    closed_below: u64,
    /// Dispatcher-side admission counters (tuples_in / filtered /
    /// late_drops); worker-side counters are folded in at finish.
    stats: EngineStats,
    shard_stats: Vec<EngineStats>,
    /// Shared live-metrics registry (also held by every worker).
    telemetry: Arc<EngineTelemetry>,
    /// Cached `telemetry.enabled()` so the per-tuple hot path tests a
    /// plain bool instead of an atomic.
    live: bool,
    done: bool,
}

impl ShardedEngine {
    /// Spawns `n_shards` workers for the query. Panics on zero shards;
    /// see [`ShardedEngine::try_new`] for the reporting variant.
    pub fn new(query: Query, n_shards: usize) -> Self {
        Self::try_new(query, n_shards).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Spawns `n_shards` workers for the query, reporting instead of
    /// panicking when `n_shards` is zero.
    pub fn try_new(query: Query, n_shards: usize) -> Result<Self, fd_core::Error> {
        if n_shards == 0 {
            return Err(fd_core::Error::InvalidParameter {
                name: "n_shards",
                value: 0.0,
                requirement: "at least one shard",
            });
        }
        let telemetry = Arc::new(EngineTelemetry::new(n_shards));
        // Bound the free list at one ring's worth of batches per shard
        // plus the staging buffers, so a burst can't pin unbounded memory.
        let pool = BatchPool::new(n_shards * (CHANNEL_DEPTH + 1));
        let mut senders = Vec::with_capacity(n_shards);
        let mut workers = Vec::with_capacity(n_shards);
        for i in 0..n_shards {
            // The dispatcher has already applied the selection; don't pay
            // for it again on the worker.
            let mut worker_query = query.clone();
            worker_query.filter = None;
            let (tx, rx) = ring::<Msg>(CHANNEL_DEPTH);
            let registry = Arc::clone(&telemetry);
            let recycle = pool.clone();
            let handle = std::thread::Builder::new()
                .name(format!("fd-shard-{i}"))
                .spawn(move || {
                    let mut engine = Engine::new(worker_query);
                    engine.keep_closed_state();
                    let tel = &registry.shards()[i];
                    while let Some(msg) = rx.recv() {
                        let live = registry.enabled();
                        match msg {
                            Msg::Batch(pkts, sent_at) => {
                                if live {
                                    let t0 = Instant::now();
                                    for p in &pkts {
                                        engine.process(p);
                                    }
                                    tel.batch_ns.record(t0.elapsed().as_nanos() as u64);
                                    tel.dispatch_lag_ns
                                        .record(sent_at.elapsed().as_nanos() as u64);
                                    tel.tuples_processed.fetch_add(pkts.len() as u64, Relaxed);
                                } else {
                                    for p in &pkts {
                                        engine.process(p);
                                    }
                                }
                                // Hand the drained buffer back for reuse.
                                recycle.put(pkts);
                            }
                            Msg::Punctuate(ts) => {
                                engine.punctuate(ts);
                                if live {
                                    tel.applied_watermark.store(ts, Relaxed);
                                    tel.lfta_evictions
                                        .store(engine.stats().lfta_evictions, Relaxed);
                                    if let Some(occ) = engine.lfta_occupancy() {
                                        tel.lfta_occupancy.store(occ as u64, Relaxed);
                                    }
                                }
                            }
                        }
                        tel.queue_depth.fetch_sub(1, Relaxed);
                    }
                    // Channel closed: end of stream.
                    let state = engine.finish_state();
                    (state, engine.stats())
                })
                .expect("spawn shard worker");
            senders.push(tx);
            workers.push(handle);
        }
        Ok(Self {
            query,
            routing: ShardBy::Key,
            senders,
            workers,
            pending: vec![Vec::new(); n_shards],
            pool,
            batch_size: DEFAULT_BATCH_SIZE,
            run_buf: Vec::new(),
            rr: 0,
            watermark: 0,
            closed_below: 0,
            stats: EngineStats::default(),
            shard_stats: vec![EngineStats::default(); n_shards],
            telemetry,
            live: true,
            done: false,
        })
    }

    /// Sets the routing policy (default [`ShardBy::Key`]). Must be called
    /// before any tuple is processed.
    pub fn routing(mut self, routing: ShardBy) -> Self {
        assert_eq!(self.stats.tuples_in, 0, "set routing before processing");
        self.routing = routing;
        self
    }

    /// Sets the flush threshold: tuples staged per shard before a batch
    /// ships to the worker (default [`DEFAULT_BATCH_SIZE`]). Larger
    /// batches amortize ring and wakeup costs; smaller ones cut
    /// dispatch-to-apply latency. Must be called before any tuple is
    /// processed; panics on zero.
    pub fn batch_size(mut self, n: usize) -> Self {
        assert!(n > 0, "batch size must be positive");
        assert_eq!(self.stats.tuples_in, 0, "set batch size before processing");
        self.batch_size = n;
        self
    }

    /// The batch-recycling pool shared with the workers — its
    /// [`reuses`](BatchPool::reuses) / [`allocs`](BatchPool::allocs)
    /// counters quantify the zero-allocation steady state.
    pub fn batch_pool(&self) -> &BatchPool<Packet> {
        &self.pool
    }

    /// Turns hot-path telemetry mirroring on or off (default on; the
    /// overhead is a few relaxed stores per tuple — see the
    /// `telemetry_overhead` bench). End-of-run counters are recorded
    /// either way. Must be called before any tuple is processed.
    pub fn live_telemetry(mut self, on: bool) -> Self {
        assert_eq!(self.stats.tuples_in, 0, "set telemetry before processing");
        self.live = on;
        self.telemetry.set_enabled(on);
        self
    }

    /// The shared live-metrics registry. Clone the `Arc` to watch the run
    /// from another thread; it stays readable (with the final counts)
    /// after `finish()` and after the engine is dropped.
    pub fn telemetry(&self) -> &Arc<EngineTelemetry> {
        &self.telemetry
    }

    /// Number of worker shards.
    pub fn n_shards(&self) -> usize {
        self.pending.len()
    }

    /// The query's display name.
    pub fn query_name(&self) -> &str {
        &self.query.name
    }

    fn route(&mut self, key: u64) -> usize {
        match self.routing {
            // Fibonacci hash: multiply by 2⁶⁴/φ, then map to a shard by
            // folding the HIGH bits (multiply-shift). `h % n` would read
            // the low bits, which stay skewed for power-of-two-strided
            // keys; the high bits are well mixed for dense and strided
            // keys alike (pinned by `key_routing_spreads_within_bound`).
            ShardBy::Key => {
                let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                ((u128::from(h) * self.n_shards() as u128) >> 64) as usize
            }
            ShardBy::RoundRobin => {
                let s = self.rr;
                self.rr = (self.rr + 1) % self.n_shards();
                s
            }
        }
    }

    /// Offers one tuple: global admission (filter, late check, watermark),
    /// then staging for the owning shard. Mirrors [`Engine::process`]
    /// decision for decision.
    pub fn process(&mut self, pkt: &Packet) {
        debug_assert!(!self.done, "process after finish");
        self.stats.tuples_in += 1;
        // Admission counters have a single writer (this thread), so the
        // live mirror is a relaxed store of the local count — no RMW.
        if self.live {
            self.telemetry
                .tuples_in
                .store(self.stats.tuples_in, Relaxed);
        }
        if let Some(f) = &self.query.filter {
            if !f(pkt) {
                self.stats.filtered += 1;
                if self.live {
                    self.telemetry.filtered.store(self.stats.filtered, Relaxed);
                }
                return;
            }
        }
        let bucket = pkt.ts / self.query.bucket_micros;
        if bucket < self.closed_below {
            self.stats.late_drops += 1;
            if self.live {
                self.telemetry
                    .late_drops
                    .store(self.stats.late_drops, Relaxed);
            }
            return;
        }
        self.watermark = self.watermark.max(pkt.ts);
        if self.live {
            self.telemetry
                .dispatcher_watermark
                .store(self.watermark, Relaxed);
        }
        let key = (self.query.group_by)(pkt);
        let shard = self.route(key);
        self.pending[shard].push(*pkt);
        if self.pending[shard].len() >= self.batch_size {
            self.flush_shard(shard);
        }
        let target =
            self.watermark.saturating_sub(self.query.slack_micros) / self.query.bucket_micros;
        self.closed_below = self.closed_below.max(target);
    }

    /// Ships a shard's staged tuples, swapping in a recycled buffer from
    /// the pool so the staging slot is ready without allocating.
    fn flush_shard(&mut self, shard: usize) {
        let batch = std::mem::replace(&mut self.pending[shard], self.pool.take(self.batch_size));
        self.send(shard, Msg::Batch(batch, Instant::now()));
    }

    /// Offers a batch of tuples through the columnar fast path: one fused
    /// pass doing admission (filter, late check, watermark advance) and
    /// route-and-scatter into the per-shard staging buffers.
    ///
    /// Admission is decision-for-decision identical to calling
    /// [`process`](Self::process) per tuple — the late check compares
    /// timestamps against the closed boundary held in timestamp space
    /// (`closed_below · bucket_micros`), which removes both per-tuple
    /// divisions: `ts / bm < closed_below  ⇔  ts < closed_below · bm`
    /// exactly, for non-negative integers, and the boundary division
    /// reruns only when the watermark gains a whole bucket. Stats and
    /// telemetry mirrors are stored once per batch instead of once per
    /// tuple.
    pub fn process_packets(&mut self, pkts: &[Packet]) {
        debug_assert!(!self.done, "process after finish");
        if pkts.is_empty() {
            return;
        }
        let bm = self.query.bucket_micros;
        let slack = self.query.slack_micros;
        let mut wm = self.watermark;
        // The boundary moves only when the watermark gains a whole bucket,
        // so the division to recompute it runs per bucket, not per tuple.
        let mut closed_low = self.closed_below.saturating_mul(bm);
        let mut filtered = 0u64;
        let mut late = 0u64;
        for pkt in pkts {
            if let Some(f) = self.query.filter.as_ref() {
                if !f(pkt) {
                    filtered += 1;
                    continue;
                }
            }
            if pkt.ts < closed_low {
                late += 1;
                continue;
            }
            wm = wm.max(pkt.ts);
            let horizon = wm.saturating_sub(slack);
            if horizon >= closed_low.saturating_add(bm) {
                closed_low = (horizon / bm) * bm;
            }
            let key = (self.query.group_by)(pkt);
            let shard = self.route(key);
            self.pending[shard].push(*pkt);
            if self.pending[shard].len() >= self.batch_size {
                self.flush_shard(shard);
            }
        }
        self.stats.tuples_in += pkts.len() as u64;
        self.stats.filtered += filtered;
        self.stats.late_drops += late;
        self.watermark = wm;
        self.closed_below = closed_low / bm;
        if self.live {
            self.telemetry
                .tuples_in
                .store(self.stats.tuples_in, Relaxed);
            self.telemetry.filtered.store(self.stats.filtered, Relaxed);
            self.telemetry
                .late_drops
                .store(self.stats.late_drops, Relaxed);
            self.telemetry.dispatcher_watermark.store(wm, Relaxed);
        }
    }

    /// Processes a punctuation: advances the global watermark and
    /// broadcasts it, closing due buckets on every shard.
    pub fn punctuate(&mut self, ts: Micros) {
        self.watermark = self.watermark.max(ts);
        if self.live {
            self.telemetry
                .dispatcher_watermark
                .store(self.watermark, Relaxed);
        }
        let target =
            self.watermark.saturating_sub(self.query.slack_micros) / self.query.bucket_micros;
        self.closed_below = self.closed_below.max(target);
        self.sync_watermark();
    }

    /// Offers a batch of stream elements, then broadcasts the advanced
    /// watermark so every shard closes the same buckets — the per-batch
    /// synchronisation point of the sharded pipeline.
    ///
    /// Runs of consecutive [`StreamEvent::Data`] go through the columnar
    /// [`process_packets`](Self::process_packets) fast path; punctuations
    /// act as barriers between runs, exactly as in per-event processing.
    pub fn process_batch(&mut self, events: &[StreamEvent]) {
        let mut run = std::mem::take(&mut self.run_buf);
        run.clear();
        for ev in events {
            match ev {
                StreamEvent::Data(pkt) => run.push(*pkt),
                StreamEvent::Punctuation(ts) => {
                    self.process_packets(&run);
                    run.clear();
                    self.punctuate(*ts);
                }
            }
        }
        self.process_packets(&run);
        run.clear();
        self.run_buf = run;
        self.sync_watermark();
    }

    /// Flushes staged tuples and broadcasts the current global watermark
    /// to all shards.
    fn sync_watermark(&mut self) {
        for shard in 0..self.n_shards() {
            if !self.pending[shard].is_empty() {
                self.flush_shard(shard);
            }
        }
        let w = self.watermark;
        if w > 0 {
            for shard in 0..self.n_shards() {
                self.send(shard, Msg::Punctuate(w));
            }
        }
    }

    fn send(&mut self, shard: usize, msg: Msg) {
        // Queue depth is the one genuinely two-writer gauge (incremented
        // here, decremented by the worker), so it is a per-message RMW —
        // unconditional, to keep both sides consistent however the
        // enabled flag is toggled.
        let tel = &self.telemetry.shards()[shard];
        match &msg {
            Msg::Batch(..) => {
                tel.batches_sent.fetch_add(1, Relaxed);
            }
            Msg::Punctuate(_) => {
                tel.punctuations_sent.fetch_add(1, Relaxed);
            }
        }
        tel.queue_depth.fetch_add(1, Relaxed);
        // A send fails only if the worker is gone — i.e. it panicked; the
        // join in finish() will surface that panic, so just report here.
        self.senders[shard]
            .send(msg)
            .unwrap_or_else(|_| panic!("shard {shard} worker has died"));
    }

    /// Ends the stream: flushes all shards, merges their closed buckets,
    /// and returns every row in (bucket, key) order — the same order the
    /// single-threaded engine emits. Subsequent calls return no rows.
    pub fn finish(&mut self) -> Vec<Row> {
        if self.done {
            return Vec::new();
        }
        self.done = true;
        // Flush staged batches and broadcast the final watermark, so every
        // worker's applied-watermark gauge catches up to the dispatcher
        // (post-run watermark lag reads 0, not the un-broadcast remainder).
        self.sync_watermark();
        self.senders.clear(); // closes every channel: workers drain and exit
        let mut combined: BTreeMap<(u64, u64), Box<dyn Aggregator>> = BTreeMap::new();
        for (shard, handle) in self.workers.drain(..).enumerate() {
            let (closed, stats) = handle.join().unwrap_or_else(|e| {
                self.telemetry.worker_panics.fetch_add(1, Relaxed);
                eprintln!("fd-shard-{shard}: worker panicked: {}", panic_message(&e));
                std::panic::resume_unwind(e);
            });
            self.shard_stats[shard] = stats;
            for cg in closed {
                match combined.entry((cg.bucket, cg.key)) {
                    Entry::Occupied(mut e) => e.get_mut().merge_boxed(cg.agg),
                    Entry::Vacant(e) => {
                        e.insert(cg.agg);
                    }
                }
            }
        }
        let bucket_micros = self.query.bucket_micros;
        let mut last_bucket = None;
        let rows: Vec<Row> = combined
            .into_iter()
            .map(|((bucket, key), agg)| {
                if last_bucket != Some(bucket) {
                    last_bucket = Some(bucket);
                    self.stats.buckets_closed += 1;
                }
                Row {
                    bucket_start: bucket * bucket_micros,
                    key,
                    value: agg.emit(secs((bucket + 1) * bucket_micros)),
                }
            })
            .collect();
        self.stats.rows_out = rows.len() as u64;
        // Record the final counters unconditionally (even with live
        // telemetry off) so a post-run snapshot always agrees exactly
        // with `stats()`.
        self.telemetry
            .tuples_in
            .store(self.stats.tuples_in, Relaxed);
        self.telemetry.filtered.store(self.stats.filtered, Relaxed);
        self.telemetry
            .late_drops
            .store(self.stats.late_drops, Relaxed);
        self.telemetry
            .dispatcher_watermark
            .store(self.watermark, Relaxed);
        self.telemetry.rows_out.store(self.stats.rows_out, Relaxed);
        self.telemetry
            .buckets_closed
            .store(self.stats.buckets_closed, Relaxed);
        rows
    }

    /// Runs a whole stream through the query and returns all rows.
    /// Chunks the stream through the columnar fast path.
    pub fn run(&mut self, stream: impl IntoIterator<Item = Packet>) -> Vec<Row> {
        let mut buf = Vec::with_capacity(self.batch_size);
        for pkt in stream {
            buf.push(pkt);
            if buf.len() == self.batch_size {
                self.process_packets(&buf);
                buf.clear();
            }
        }
        self.process_packets(&buf);
        self.finish()
    }

    /// Combined execution counters: dispatcher admission counts plus the
    /// shard-side LFTA evictions, and the combiner's row/bucket counts.
    /// Shard-side numbers are folded in by [`ShardedEngine::finish`].
    pub fn stats(&self) -> EngineStats {
        let shards = crate::metrics::combine_shard_stats(&self.shard_stats);
        EngineStats {
            lfta_evictions: shards.lfta_evictions,
            ..self.stats
        }
    }

    /// Raw per-shard engine counters (populated by
    /// [`ShardedEngine::finish`]).
    pub fn per_shard_stats(&self) -> &[EngineStats] {
        &self.shard_stats
    }
}

impl Drop for ShardedEngine {
    fn drop(&mut self) {
        // Close channels and reap workers so an abandoned engine doesn't
        // leak threads. A worker panic must not be swallowed silently: we
        // can't propagate it from drop (we may already be unwinding), so
        // count it in the telemetry registry and log the payload.
        self.senders.clear();
        for (shard, handle) in self.workers.drain(..).enumerate() {
            if let Err(payload) = handle.join() {
                self.telemetry.worker_panics.fetch_add(1, Relaxed);
                eprintln!(
                    "fd-shard-{shard}: worker panicked: {}",
                    panic_message(&payload)
                );
            }
        }
    }
}

/// Best-effort extraction of a panic payload's message (panics carry
/// `&'static str` or `String` in practice).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "<non-string panic payload>"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregators::{count_factory, fwd_sum_factory};
    use crate::tuple::{Proto, MICROS_PER_SEC};
    use fd_core::decay::Monomial;

    fn pkt(ts_s: f64, dst_ip: u32) -> Packet {
        Packet {
            ts: (ts_s * MICROS_PER_SEC as f64) as Micros,
            src_ip: 1,
            dst_ip,
            src_port: 1000,
            dst_port: 80,
            len: 100,
            proto: Proto::Tcp,
        }
    }

    fn count_query() -> Query {
        Query::builder("count")
            .group_by(|p| p.dst_host())
            .bucket_secs(60)
            .aggregate(count_factory())
            .two_level(true)
            .lfta_slots(64)
            .build()
    }

    #[test]
    fn sharded_counts_match_single_threaded() {
        let stream: Vec<Packet> = (0..10_000)
            .map(|i| pkt(0.01 * i as f64, (i % 97) as u32))
            .collect();
        let single = Engine::new(count_query()).run(stream.clone());
        let sharded = ShardedEngine::new(count_query(), 4).run(stream);
        assert_eq!(single.len(), sharded.len());
        for (a, b) in single.iter().zip(&sharded) {
            assert_eq!((a.bucket_start, a.key), (b.bucket_start, b.key));
            assert_eq!(a.value, b.value);
        }
    }

    #[test]
    fn round_robin_merges_split_groups_exactly() {
        // Every group's state splits across all 4 shards; counts are
        // additively mergeable so the merge path must reassemble them
        // exactly.
        let stream: Vec<Packet> = (0..8_000)
            .map(|i| pkt(0.005 * i as f64, (i % 13) as u32))
            .collect();
        let single = Engine::new(count_query()).run(stream.clone());
        let sharded = ShardedEngine::new(count_query(), 4)
            .routing(ShardBy::RoundRobin)
            .run(stream);
        assert_eq!(single.len(), sharded.len());
        for (a, b) in single.iter().zip(&sharded) {
            assert_eq!((a.bucket_start, a.key), (b.bucket_start, b.key));
            assert_eq!(a.value, b.value);
        }
    }

    #[test]
    fn forward_decayed_sum_shards_by_key() {
        let q = || {
            Query::builder("fwd")
                .group_by(|p| p.dst_host())
                .bucket_secs(60)
                .aggregate(fwd_sum_factory(Monomial::quadratic(), |p| p.len as f64))
                .two_level(false)
                .build()
        };
        let stream: Vec<Packet> = (0..5_000)
            .map(|i| pkt(0.03 * i as f64, (i % 31) as u32))
            .collect();
        let single = Engine::new(q()).run(stream.clone());
        let sharded = ShardedEngine::new(q(), 4).run(stream);
        assert_eq!(single.len(), sharded.len());
        for (a, b) in single.iter().zip(&sharded) {
            assert_eq!((a.bucket_start, a.key), (b.bucket_start, b.key));
            assert_eq!(a.value, b.value, "key {}", a.key);
        }
    }

    #[test]
    fn late_tuples_drop_identically() {
        let mut single = Engine::new(count_query());
        let mut sharded = ShardedEngine::new(count_query(), 4);
        let events = [
            StreamEvent::Data(pkt(10.0, 1)),
            StreamEvent::Punctuation(130 * MICROS_PER_SEC),
            StreamEvent::Data(pkt(15.0, 1)), // late: bucket 0 closed
            StreamEvent::Data(pkt(140.0, 2)),
        ];
        for ev in &events {
            single.process_event(ev);
        }
        sharded.process_batch(&events);
        let s_rows = single.finish();
        let p_rows = sharded.finish();
        assert_eq!(s_rows.len(), p_rows.len());
        assert_eq!(single.stats().late_drops, 1);
        assert_eq!(sharded.stats().late_drops, 1);
    }

    #[test]
    fn stats_aggregate_across_shards() {
        let q = Query::builder("stats")
            .filter(|p| p.proto == Proto::Tcp)
            .group_by(|p| p.dst_host())
            .bucket_secs(60)
            .aggregate(count_factory())
            .build();
        let mut e = ShardedEngine::new(q, 3);
        for i in 0..300 {
            e.process(&pkt(i as f64 * 0.1, (i % 7) as u32));
        }
        let rows = e.finish();
        let stats = e.stats();
        assert_eq!(stats.tuples_in, 300);
        assert_eq!(stats.rows_out, rows.len() as u64);
        assert!(stats.buckets_closed >= 1);
        let per_shard = e.per_shard_stats();
        assert_eq!(per_shard.len(), 3);
        assert_eq!(
            per_shard.iter().map(|s| s.tuples_in).sum::<u64>(),
            300,
            "every accepted tuple lands on exactly one shard"
        );
    }

    #[test]
    fn try_new_rejects_zero_shards() {
        assert!(matches!(
            ShardedEngine::try_new(count_query(), 0),
            Err(fd_core::Error::InvalidParameter {
                name: "n_shards",
                ..
            })
        ));
    }

    #[test]
    fn finish_is_idempotent_and_drop_reaps_workers() {
        let mut e = ShardedEngine::new(count_query(), 2);
        e.process(&pkt(1.0, 1));
        assert_eq!(e.finish().len(), 1);
        assert!(e.finish().is_empty());
        let e2 = ShardedEngine::new(count_query(), 2);
        drop(e2); // must not hang or leak
    }

    #[test]
    fn key_routing_spreads_within_bound() {
        // Dense sequential keys AND power-of-two-strided keys must both
        // land within ±20% of a uniform share on every shard — the
        // strided case is exactly what a low-bits `h % n` fold fails.
        const KEYS: u64 = 100_000;
        for n_shards in [2usize, 3, 4, 8] {
            for (label, stride_shift) in [("dense", 0u32), ("strided", 12u32)] {
                let mut e = ShardedEngine::new(count_query(), n_shards);
                let mut counts = vec![0u64; n_shards];
                for key in 0..KEYS {
                    counts[e.route(key << stride_shift)] += 1;
                }
                let uniform = KEYS as f64 / n_shards as f64;
                for (shard, &c) in counts.iter().enumerate() {
                    let dev = (c as f64 - uniform).abs() / uniform;
                    assert!(
                        dev <= 0.20,
                        "{label} keys, {n_shards} shards: shard {shard} got {c} \
                         (uniform {uniform:.0}, deviation {:.1}%)",
                        dev * 100.0
                    );
                }
            }
        }
    }

    #[test]
    fn dropped_engine_records_worker_panic() {
        use crate::udaf::{AggValue, Aggregator, FnFactory};
        use std::any::Any;

        // An aggregator that panics when it meets the sentinel tuple.
        struct Tripwire;
        impl Aggregator for Tripwire {
            fn update(&mut self, pkt: &Packet) {
                assert!(pkt.len != 0xDEAD, "tripwire: poisoned tuple");
            }
            fn merge_boxed(&mut self, _other: Box<dyn Aggregator>) {}
            fn emit(&self, _t: f64) -> AggValue {
                AggValue::Float(0.0)
            }
            fn size_bytes(&self) -> usize {
                0
            }
            fn as_any_box(self: Box<Self>) -> Box<dyn Any> {
                self
            }
        }

        let q = Query::builder("tripwire")
            .group_by(|_| 0) // one group: everything routes to one shard
            .bucket_secs(60)
            .aggregate(FnFactory::new("tripwire", true, |_| Box::new(Tripwire)))
            .two_level(false)
            .build();
        let mut e = ShardedEngine::new(q, 2);
        // Exactly one batch's worth of tuples so process() itself flushes
        // the batch to the worker (no explicit punctuation: the worker
        // dies, and a later punctuation broadcast would trip the
        // dispatcher).
        for i in 0..DEFAULT_BATCH_SIZE {
            let mut p = pkt(0.001 * i as f64, 1);
            if i == 7 {
                p.len = 0xDEAD;
            }
            e.process(&p);
        }
        let tel = Arc::clone(e.telemetry());
        drop(e); // Drop must reap the dead worker and record the panic
        assert_eq!(tel.worker_panics.load(Relaxed), 1);
    }

    #[test]
    fn batched_admission_matches_scalar_exactly() {
        // The columnar process_packets path must accept, filter and drop
        // exactly the tuples the per-tuple path does — including streams
        // where the closed boundary advances mid-batch and late tuples
        // interleave with fresh ones.
        let q = || {
            Query::builder("diff")
                .filter(|p| p.dst_port == 80)
                .group_by(|p| p.dst_host())
                .bucket_secs(60)
                .slack_secs(30.0)
                .aggregate(count_factory())
                .build()
        };
        let mut stream = Vec::new();
        for i in 0..20_000u64 {
            let mut p = pkt(i as f64 * 0.05, (i % 41) as u32);
            if i % 17 == 0 {
                p.dst_port = 443; // filtered
            }
            if i % 97 == 0 {
                p.ts = p.ts.saturating_sub(200 * MICROS_PER_SEC); // late
            }
            stream.push(p);
        }
        let mut scalar = ShardedEngine::new(q(), 3);
        for p in &stream {
            scalar.process(p);
        }
        let s_rows = scalar.finish();
        let mut batched = ShardedEngine::new(q(), 3).batch_size(256);
        let b_rows = batched.run(stream);
        let (ss, bs) = (scalar.stats(), batched.stats());
        assert_eq!(ss.tuples_in, bs.tuples_in);
        assert_eq!(ss.filtered, bs.filtered);
        assert_eq!(ss.late_drops, bs.late_drops);
        assert_eq!(s_rows.len(), b_rows.len());
        for (a, b) in s_rows.iter().zip(&b_rows) {
            assert_eq!((a.bucket_start, a.key), (b.bucket_start, b.key));
            assert_eq!(a.value, b.value, "key {}", a.key);
        }
    }

    #[test]
    fn pooled_batches_recycle_and_count_like_fresh_ones() {
        // Satellite check: batches_sent must count recycled-pool sends
        // identically to fresh sends. Route everything to one shard,
        // ship enough batches that the depth-8 ring forces the worker to
        // drain (returning buffers to the pool) while the dispatcher is
        // still flushing.
        const BATCH: usize = 64;
        const N_BATCHES: u64 = 40;
        let q = Query::builder("pool")
            .group_by(|_| 0)
            .bucket_secs(60)
            .aggregate(count_factory())
            .two_level(false)
            .build();
        let mut e = ShardedEngine::new(q, 1).batch_size(BATCH);
        let stream: Vec<Packet> = (0..N_BATCHES * BATCH as u64)
            .map(|i| pkt(0.001 * i as f64, 1))
            .collect();
        e.run(stream);
        let snap = e.telemetry().snapshot();
        let sent: u64 = snap.shards.iter().map(|s| s.batches_sent).sum();
        assert_eq!(
            sent, N_BATCHES,
            "every batch counted once, recycled or fresh"
        );
        let pool = e.batch_pool();
        assert!(
            pool.reuses() > 0,
            "steady state must recycle buffers (allocs {}, reuses {})",
            pool.allocs(),
            pool.reuses()
        );
        assert!(
            pool.allocs() < N_BATCHES,
            "most sends must reuse pooled buffers, not allocate"
        );
    }

    #[test]
    fn batch_size_builder_rejects_zero_and_late_calls() {
        let e = ShardedEngine::new(count_query(), 2).batch_size(16);
        drop(e);
        let r = std::panic::catch_unwind(|| {
            let _ = ShardedEngine::new(count_query(), 2).batch_size(0);
        });
        assert!(r.is_err(), "zero batch size must panic");
    }

    #[test]
    fn telemetry_final_counters_match_stats() {
        let q = Query::builder("tel")
            .filter(|p| p.proto == Proto::Tcp)
            .group_by(|p| p.dst_host())
            .bucket_secs(60)
            .aggregate(count_factory())
            .build();
        let mut e = ShardedEngine::new(q, 3);
        let mut events = Vec::new();
        for i in 0..500 {
            let mut p = pkt(i as f64 * 0.5, (i % 11) as u32);
            if i % 50 == 0 {
                p.proto = Proto::Udp; // filtered out
            }
            events.push(StreamEvent::Data(p));
        }
        events.push(StreamEvent::Punctuation(400 * MICROS_PER_SEC));
        events.push(StreamEvent::Data(pkt(10.0, 1))); // late: dropped
        e.process_batch(&events);
        let rows = e.finish();
        let stats = e.stats();
        let snap = e.telemetry().snapshot();
        assert_eq!(snap.tuples_in, stats.tuples_in);
        assert_eq!(snap.filtered, stats.filtered);
        assert_eq!(snap.late_drops, stats.late_drops);
        assert_eq!(snap.rows_out, rows.len() as u64);
        assert_eq!(snap.buckets_closed, stats.buckets_closed);
        assert!(stats.late_drops >= 1);
        assert_eq!(snap.worker_panics, 0);
        // Every queue drained, every shard caught up to the dispatcher.
        for shard in &snap.shards {
            assert_eq!(shard.queue_depth, 0);
            assert_eq!(shard.watermark_lag_us, 0);
        }
        assert_eq!(
            snap.shards.iter().map(|s| s.tuples_processed).sum::<u64>(),
            stats.tuples_in - stats.filtered - stats.late_drops
        );
    }
}
