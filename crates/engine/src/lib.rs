//! # fd-engine — a Gigascope-like mini stream engine
//!
//! The paper's experiments (Section VIII) run inside GS/Gigascope, AT&T's
//! production network-stream DBMS: SQL-like continuous queries with
//! time-bucket group-by, user-defined aggregate functions (UDAFs), and a
//! two-level execution architecture that splits a query into a *low-level*
//! part (LFTA: partial aggregation in a fixed-size hash table close to the
//! NIC) and a *high-level* part (HFTA: super-aggregation combining the
//! partial results).
//!
//! This crate reproduces that substrate:
//!
//! - [`mod@tuple`] — the packet record type and the microsecond clock;
//! - [`udaf`] — the [`udaf::Aggregator`] trait (GS's UDAF hook) and the
//!   query model: filter → group-by → time bucket → aggregate;
//! - [`aggregators`] — ready-made aggregator factories wrapping every
//!   fd-core summary, plus the undecayed built-ins (`count(*)`,
//!   `sum(len)`) and the backward-decay baselines;
//! - [`lfta`] — the low-level fixed-size direct-mapped aggregation table
//!   with collision eviction;
//! - [`engine`] — the full pipeline: two-level or single-level execution,
//!   bucket close on watermark, per-tuple cost accounting;
//! - [`shard`] — the sharded parallel engine: N worker threads, each a
//!   full LFTA+HFTA pipeline over a hash partition of the stream, with
//!   closed buckets combined by merging (Section VI-B mergeability);
//! - [`spsc`] — the dispatcher's plumbing: bounded single-producer
//!   rings and a batch-recycling pool, so steady-state dispatch ships
//!   batches to workers without allocating;
//! - [`metrics`] — the CPU-load model translating measured per-tuple cost
//!   into the load/drop curves the paper plots;
//! - [`overload`] — the overload control plane: bounded-lag backpressure
//!   deadlines, decay-aware shed policies with Horvitz–Thompson
//!   reweighting, the stuck-shard watchdog lease parameters, and the
//!   [`overload::DrainReport`] graceful shutdown contract;
//! - [`telemetry`] — live lock-free observability for the sharded engine:
//!   an `Arc`-shared atomic registry (queue depth, watermark lag, admission
//!   counters), per-batch latency histograms with p50/p95/p99, and
//!   Prometheus/JSON snapshot export;
//! - [`processor`] — the [`processor::StreamProcessor`] trait: the one
//!   process/punctuate/finish surface implemented by both executors, so
//!   drivers and tools are generic over single-threaded vs sharded runs;
//! - [`supervisor`] — checkpoint slots and restart policy for
//!   fault-tolerant shard workers: each worker periodically serializes its
//!   full engine state (exact, thanks to Section VI-B mergeable summaries)
//!   and the dispatcher replays the short tail after a crash;
//! - [`fault`] — deterministic fault injection (`FD_FAULT=panic:SHARD:N`,
//!   `disk:KIND:N`) used by the recovery test-suite and the fault-matrix
//!   and crash-matrix CI jobs;
//! - [`io`] — the filesystem seam of the durability layer: the
//!   [`io::IoBackend`] trait, the real [`io::StdFs`] backend, and the
//!   fault-injecting [`io::FaultyFs`] wrapper;
//! - [`durability`] — crash-durable persistence: per-shard segmented
//!   CRC-framed WALs, atomic on-disk checkpoints behind a versioned
//!   `MANIFEST`, torn-tail truncation, and recovery that resumes a run
//!   bit-identically after `kill -9`.
//!
//! The paper's example query
//!
//! ```sql
//! select tb, destIP, destPort, sum(len*(time % 60)*(time % 60))/3600
//! from TCP group by time/60 as tb, destIP, destPort
//! ```
//!
//! is expressed here as:
//!
//! ```
//! use fd_engine::prelude::*;
//! use fd_core::decay::Monomial;
//!
//! let query = Query::builder("decayed_traffic")
//!     .filter(|p| p.proto == Proto::Tcp)
//!     .group_by(|p| p.dst_key())
//!     .bucket_secs(60)
//!     .aggregate(fwd_sum_factory(Monomial::quadratic(), |p| p.len as f64))
//!     .build();
//! let mut engine = Engine::new(query);
//! # let pkt = Packet { ts: 1_000_000, src_ip: 1, dst_ip: 2, src_port: 3,
//! #                    dst_port: 80, len: 100, proto: Proto::Tcp };
//! engine.process(&pkt);
//! let rows = engine.finish();
//! assert_eq!(rows.len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

pub mod aggregators;
pub mod driver;
pub mod durability;
pub mod engine;
pub mod fault;
pub mod io;
pub mod lfta;
pub mod metrics;
pub mod overload;
pub mod processor;
pub mod report;
pub mod shard;
pub mod spsc;
pub mod supervisor;
pub mod telemetry;
pub mod tuple;
pub mod udaf;

/// One-stop imports for writing queries.
pub mod prelude {
    pub use crate::aggregators::*;
    pub use crate::driver::{QuerySet, RateDriver, ReplayStats};
    pub use crate::durability::{DurabilityOptions, FsyncPolicy, RecoveryReport};
    pub use crate::engine::{ClosedGroup, Engine, EngineStats, Row, StreamEvent};
    pub use crate::fault::{DiskFault, DiskFaultKind, FaultKind, FaultPlan};
    pub use crate::io::{FaultyFs, IoBackend, StdFs};
    pub use crate::metrics::{combine_shard_stats, cpu_load_pct, drop_fraction, LoadPoint};
    pub use crate::overload::{DrainReport, OverloadConfig, ShedPolicy};
    pub use crate::processor::{replay, StreamProcessor};
    pub use crate::report::{rows_to_csv, rows_to_table};
    pub use crate::shard::{IngressHandle, ShardBy, ShardedEngine};
    pub use crate::supervisor::{DEFAULT_CHECKPOINT_EVERY, DEFAULT_MAX_RESTARTS};
    pub use crate::telemetry::{EngineTelemetry, MetricsSnapshot, Reporter};
    pub use crate::tuple::{secs, Micros, Packet, Proto, MICROS_PER_SEC};
    pub use crate::udaf::{AggValue, Aggregator, AggregatorFactory, ItemValue, Query};
}
