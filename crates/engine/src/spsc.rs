//! Bounded SPSC rings and a batch-recycling pool for the sharded
//! dispatcher's hot path.
//!
//! The original dispatcher used [`std::sync::mpsc::sync_channel`] plus
//! `mem::take` on the staging buffers: every flush shipped a `Vec` to the
//! worker and left a fresh empty `Vec` behind, so steady-state dispatch
//! paid one heap allocation (and the capacity regrowth that follows) per
//! batch per shard. This module removes both costs:
//!
//! - [`ring`] builds a bounded single-producer/single-consumer channel —
//!   exactly the dispatcher→worker topology — with the minimal state a
//!   blocking ring needs: one ring buffer, one lock, two wakeup
//!   conditions. The crate forbids `unsafe`, so the ring is a
//!   `Mutex<VecDeque>` with two [`Condvar`]s rather than an atomic
//!   index ring; messages are whole batches, so the lock is taken once
//!   per ~thousand tuples and never contends per tuple.
//! - [`BatchPool`] recycles the batch `Vec`s themselves: workers return
//!   each drained buffer to a shared free list, and the dispatcher's next
//!   flush swaps a recycled buffer into the staging slot instead of
//!   allocating. Once the pool is primed (a few batches per shard),
//!   steady-state dispatch performs zero allocations.
//!
//! Both halves report what they did — [`BatchPool::reuses`] /
//! [`BatchPool::allocs`] — so tests can pin the zero-allocation claim
//! instead of trusting it.
//!
//! ## The multi-producer ingress fabric
//!
//! The ring is nominally SPSC, but because it is a `Mutex<VecDeque>` (not
//! an atomic index ring) every transition happens under one lock, and the
//! wakeup elisions stay sound with *several* senders sharing one
//! [`RingSender`] behind an `Arc`: the receiver parks only after
//! observing an empty buffer under the lock, so whichever sender's push
//! makes the buffer non-empty performs the wake; senders park only after
//! observing a full buffer and register in a waiter count under the same
//! lock, and every pop that finds a registered waiter wakes one, which
//! either fills the slot or (channel closed) fails out. (A plain
//! "pop-from-full wakes one" rule would be enough for a single sender but
//! strands extra senders when the receiver drains full → empty on one
//! notify; the waiter count keeps the no-contention fast path free of
//! syscalls while waking exactly as many senders as pops can feed.) The
//! WAL writer's command ring uses
//! exactly this: `P` ingress handles and the coordinator share one
//! `Arc<RingSender<WalCmd>>`, preserving per-producer FIFO (each handle's
//! records enter in its own stash order) without a second channel
//! implementation.
//!
//! The per-(producer, shard) data fabric, by contrast, stays strictly
//! SPSC: [`ring_fabric`] builds the `P × N` grid of dedicated rings the
//! multi-producer engine scatters into, and [`BatchPool`] is instantiated
//! per producer (pool sharding) so handles never contend on a shared
//! free list and total pooled capacity scales with `producers × shards`.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// Ring state under the lock: the buffer plus liveness flags for each
/// endpoint, which turn "channel closed" into a checkable condition.
struct State<T> {
    buf: VecDeque<T>,
    tx_alive: bool,
    rx_alive: bool,
    /// Senders currently parked (or committed to parking) on `not_full`.
    /// Maintained under the lock so the receiver knows whether a pop must
    /// wake anyone — required once several senders share one
    /// [`RingSender`] behind an `Arc` (see the module docs).
    tx_waiting: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    /// Signalled by the sender after a push and on sender drop.
    not_empty: Condvar,
    /// Signalled by the receiver after a pop and on receiver drop.
    not_full: Condvar,
    cap: usize,
}

impl<T> Shared<T> {
    /// Locks the state, recovering from poisoning: a panicking peer thread
    /// must not wedge this one (worker panics are reaped and reported by
    /// the engine's join path; the ring's plain data stays consistent).
    fn lock(&self) -> MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Sending half of a [`ring`]. Dropping it closes the channel: the
/// receiver drains what was sent, then sees end-of-stream.
pub struct RingSender<T> {
    shared: Arc<Shared<T>>,
}

/// Receiving half of a [`ring`]. Dropping it unblocks and fails any
/// in-progress or future send.
pub struct RingReceiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a bounded SPSC ring holding at most `cap` in-flight messages.
///
/// `send` blocks while the ring is full; `recv` blocks while it is empty.
/// Panics if `cap` is zero (a rendezvous ring would deadlock a
/// dispatcher that batches ahead of its worker).
pub fn ring<T>(cap: usize) -> (RingSender<T>, RingReceiver<T>) {
    assert!(cap > 0, "ring capacity must be positive");
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            buf: VecDeque::with_capacity(cap),
            tx_alive: true,
            rx_alive: true,
            tx_waiting: 0,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        cap,
    });
    (
        RingSender {
            shared: Arc::clone(&shared),
        },
        RingReceiver { shared },
    )
}

/// Builds the dedicated ring grid of a multi-producer ingress fabric:
/// one SPSC ring per (producer, shard) pair, each of depth `cap`.
///
/// Returned producer-major: `senders[p]` is producer `p`'s sender per
/// shard (moved into its ingress handle), `receivers[s]` is shard `s`'s
/// receiver per producer (moved into its worker, drained in fixed
/// producer order).
#[allow(clippy::type_complexity)]
pub fn ring_fabric<T>(
    producers: usize,
    shards: usize,
    cap: usize,
) -> (Vec<Vec<RingSender<T>>>, Vec<Vec<RingReceiver<T>>>) {
    assert!(producers > 0 && shards > 0, "fabric needs both dimensions");
    let mut senders: Vec<Vec<RingSender<T>>> = (0..producers).map(|_| Vec::new()).collect();
    let mut receivers: Vec<Vec<RingReceiver<T>>> = Vec::with_capacity(shards);
    for _shard in 0..shards {
        let mut per_producer = Vec::with_capacity(producers);
        for tx_row in senders.iter_mut() {
            let (tx, rx) = ring::<T>(cap);
            tx_row.push(tx);
            per_producer.push(rx);
        }
        receivers.push(per_producer);
    }
    (senders, receivers)
}

/// Why a bounded send ([`RingSender::send_deadline`]) failed. Either way
/// the message comes back to the caller, who owns the shed/retry decision.
#[derive(Debug, PartialEq, Eq)]
pub enum SendError<T> {
    /// The deadline elapsed with the ring still full.
    Full(T),
    /// The receiver is gone.
    Closed(T),
}

impl<T> SendError<T> {
    /// The message that did not make it in.
    pub fn into_inner(self) -> T {
        match self {
            SendError::Full(msg) | SendError::Closed(msg) => msg,
        }
    }
}

/// What [`RingSender::wait_capacity`] observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Capacity {
    /// At least one slot was free when the call returned.
    Ready,
    /// The deadline elapsed with the ring still full — the receiver made
    /// no progress for the whole wait.
    TimedOut,
    /// The receiver is gone.
    Closed,
}

impl<T> RingSender<T> {
    /// Enqueues `msg`, blocking while the ring is full. Returns the
    /// message back as `Err` if the receiver is gone.
    pub fn send(&self, msg: T) -> Result<(), T> {
        let mut st = self.shared.lock();
        loop {
            if !st.rx_alive {
                return Err(msg);
            }
            if st.buf.len() < self.shared.cap {
                // SPSC: the one receiver only ever waits after observing an
                // empty buffer under this lock, so a push onto a non-empty
                // ring cannot have a waiter to wake. Skipping the notify
                // there elides a futex syscall per steady-state send.
                let was_empty = st.buf.is_empty();
                st.buf.push_back(msg);
                drop(st);
                if was_empty {
                    self.shared.not_empty.notify_one();
                }
                return Ok(());
            }
            st.tx_waiting += 1;
            st = self
                .shared
                .not_full
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
            st.tx_waiting -= 1;
        }
    }

    /// Enqueues `msg`, blocking at most `deadline` while the ring is full.
    ///
    /// The bounded-lag variant of [`send`](RingSender::send): a wedged
    /// receiver can stall this call only up to the deadline, after which
    /// the message comes back as [`SendError::Full`] and the caller
    /// consults its shed policy. Identical to `send` on the non-full fast
    /// path (one lock, elided wakeup).
    pub fn send_deadline(&self, msg: T, deadline: std::time::Duration) -> Result<(), SendError<T>> {
        let start = std::time::Instant::now();
        let mut st = self.shared.lock();
        loop {
            if !st.rx_alive {
                return Err(SendError::Closed(msg));
            }
            if st.buf.len() < self.shared.cap {
                let was_empty = st.buf.is_empty();
                st.buf.push_back(msg);
                drop(st);
                if was_empty {
                    self.shared.not_empty.notify_one();
                }
                return Ok(());
            }
            let Some(remaining) = deadline.checked_sub(start.elapsed()) else {
                return Err(SendError::Full(msg));
            };
            st.tx_waiting += 1;
            let (guard, _) = self
                .shared
                .not_full
                .wait_timeout(st, remaining)
                .unwrap_or_else(PoisonError::into_inner);
            st = guard;
            st.tx_waiting -= 1;
        }
    }

    /// Blocks until the ring has at least one free slot, the receiver
    /// disappears, or `deadline` elapses — without enqueuing anything.
    ///
    /// Only meaningful for a ring with a **sole** producer (the strict
    /// SPSC data lanes): with no competing sender, observed capacity can
    /// only grow until this thread's next push, so `Ready` guarantees the
    /// next [`send`](RingSender::send) completes without blocking. The
    /// dispatcher uses this to make its shed decision *before* committing
    /// a batch to the supervision backlog and WAL, preserving write-ahead
    /// ordering (nothing enters the log that the ring then refuses).
    /// Unsound as a non-blocking-send guarantee on an `Arc`-shared sender.
    pub fn wait_capacity(&self, deadline: std::time::Duration) -> Capacity {
        let start = std::time::Instant::now();
        let mut st = self.shared.lock();
        loop {
            if !st.rx_alive {
                return Capacity::Closed;
            }
            if st.buf.len() < self.shared.cap {
                return Capacity::Ready;
            }
            let Some(remaining) = deadline.checked_sub(start.elapsed()) else {
                return Capacity::TimedOut;
            };
            st.tx_waiting += 1;
            let (guard, _) = self
                .shared
                .not_full
                .wait_timeout(st, remaining)
                .unwrap_or_else(PoisonError::into_inner);
            st = guard;
            st.tx_waiting -= 1;
        }
    }

    /// Enqueues `msg` without ever blocking: if the ring is full, the
    /// *oldest queued* message is popped to make room and returned as
    /// `Ok(Some(displaced))` — the mechanism behind
    /// `ShedPolicy::DropOldest`, which prefers shedding stale batches
    /// (whose forward-decay weights are smallest) over fresh ones.
    /// Returns `Err(msg)` if the receiver is gone.
    pub fn send_displacing(&self, msg: T) -> Result<Option<T>, T> {
        let mut st = self.shared.lock();
        if !st.rx_alive {
            return Err(msg);
        }
        let displaced = if st.buf.len() >= self.shared.cap {
            st.buf.pop_front()
        } else {
            None
        };
        let was_empty = st.buf.is_empty();
        st.buf.push_back(msg);
        drop(st);
        if was_empty {
            self.shared.not_empty.notify_one();
        }
        Ok(displaced)
    }

    /// Messages queued right now (a snapshot under the lock) — the
    /// ring-depth half of a shard's lag budget.
    pub fn len(&self) -> usize {
        self.shared.lock().buf.len()
    }

    /// Whether the ring is empty right now (a snapshot under the lock).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for RingSender<T> {
    fn drop(&mut self) {
        self.shared.lock().tx_alive = false;
        self.shared.not_empty.notify_all();
    }
}

impl<T> RingReceiver<T> {
    /// Dequeues the next message, blocking while the ring is empty.
    /// Returns `None` once the sender is dropped and the ring drained.
    pub fn recv(&self) -> Option<T> {
        let mut st = self.shared.lock();
        loop {
            if let Some(msg) = st.buf.pop_front() {
                // Mirror of the send-side elision: senders only wait after
                // observing a full buffer, registering in `tx_waiting`
                // under this lock, so a pop with no registered waiter has
                // nobody to wake. (Checking "was the buffer full" instead
                // would strand all but one of several Arc-shared senders
                // when the receiver drains full → empty on one notify.)
                let wake = st.tx_waiting > 0;
                drop(st);
                if wake {
                    self.shared.not_full.notify_one();
                }
                return Some(msg);
            }
            if !st.tx_alive {
                return None;
            }
            st = self
                .shared
                .not_empty
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

impl<T> Drop for RingReceiver<T> {
    fn drop(&mut self) {
        self.shared.lock().rx_alive = false;
        self.shared.not_full.notify_all();
    }
}

/// A bounded free list of reusable `Vec<T>` batch buffers, shared between
/// the dispatcher (which takes) and the workers (which return).
///
/// Cloning shares the pool. The free list holds at most `max_pooled`
/// buffers; returns beyond that bound drop the buffer, so a burst can
/// never pin more memory than `max_pooled` full batches.
pub struct BatchPool<T> {
    inner: Arc<PoolInner<T>>,
}

struct PoolInner<T> {
    free: Mutex<Vec<Vec<T>>>,
    max_pooled: std::sync::atomic::AtomicUsize,
    reuses: std::sync::atomic::AtomicU64,
    allocs: std::sync::atomic::AtomicU64,
}

impl<T> Clone for BatchPool<T> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> BatchPool<T> {
    /// Creates a pool retaining at most `max_pooled` free buffers.
    pub fn new(max_pooled: usize) -> Self {
        Self {
            inner: Arc::new(PoolInner {
                free: Mutex::new(Vec::with_capacity(max_pooled)),
                max_pooled: std::sync::atomic::AtomicUsize::new(max_pooled),
                reuses: std::sync::atomic::AtomicU64::new(0),
                allocs: std::sync::atomic::AtomicU64::new(0),
            }),
        }
    }

    /// Adjusts the retention bound on a live pool. Holders that cloned the
    /// pool see the new bound immediately; an oversized free list shrinks
    /// lazily as buffers are taken. The supervised sharded engine uses
    /// this to widen the pool to its checkpoint window, so buffers
    /// retained in the replay backlog still recycle instead of forcing a
    /// cold allocation per batch.
    pub fn set_max_pooled(&self, max_pooled: usize) {
        self.inner
            .max_pooled
            .store(max_pooled, std::sync::atomic::Ordering::Relaxed);
    }

    /// Tops the free list up to `count` ready buffers of capacity `cap`,
    /// writing every element once (with clones of `fill`) so the backing
    /// pages are faulted in here — at spawn, off the hot path — rather
    /// than lazily by the dispatcher. Without this, every first use of a
    /// fresh 48 KB batch buffer costs the dispatch loop a dozen page
    /// faults, and a supervised engine (whose replay backlog roughly
    /// doubles the number of buffers in circulation) pays twice as many
    /// of them as an unsupervised one.
    pub fn prewarm(&self, count: usize, cap: usize, fill: T)
    where
        T: Clone,
    {
        let missing = {
            let free = self
                .inner
                .free
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            count.saturating_sub(free.len())
        };
        // Build (and fault) the buffers outside the lock.
        let ready: Vec<Vec<T>> = (0..missing)
            .map(|_| {
                let mut buf = Vec::with_capacity(cap);
                buf.resize(cap, fill.clone());
                buf.clear();
                buf
            })
            .collect();
        let mut free = self
            .inner
            .free
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        for buf in ready {
            if free.len() >= count {
                break;
            }
            free.push(buf);
        }
    }

    /// Hands out an empty buffer: a recycled one when available (its
    /// previously grown capacity comes along for free), otherwise a fresh
    /// allocation of capacity `cap`.
    pub fn take(&self, cap: usize) -> Vec<T> {
        use std::sync::atomic::Ordering::Relaxed;
        let recycled = self
            .inner
            .free
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop();
        match recycled {
            Some(buf) => {
                self.inner.reuses.fetch_add(1, Relaxed);
                buf
            }
            None => {
                self.inner.allocs.fetch_add(1, Relaxed);
                Vec::with_capacity(cap)
            }
        }
    }

    /// Returns a drained buffer to the free list (clearing it first).
    /// Dropped instead if the pool is already at its retention bound.
    pub fn put(&self, mut buf: Vec<T>) {
        buf.clear();
        let mut free = self
            .inner
            .free
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if free.len()
            < self
                .inner
                .max_pooled
                .load(std::sync::atomic::Ordering::Relaxed)
        {
            free.push(buf);
        }
    }

    /// Buffers handed out from the free list so far.
    pub fn reuses(&self) -> u64 {
        self.inner.reuses.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Buffers that had to be freshly allocated.
    pub fn allocs(&self) -> u64 {
        self.inner.allocs.load(std::sync::atomic::Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_close_on_sender_drop() {
        let (tx, rx) = ring::<u32>(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        drop(tx);
        assert_eq!(rx.recv(), Some(0));
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), Some(3));
        assert_eq!(rx.recv(), None);
        assert_eq!(rx.recv(), None, "closed ring stays closed");
    }

    #[test]
    fn send_fails_once_receiver_is_gone() {
        let (tx, rx) = ring::<u32>(2);
        tx.send(1).unwrap();
        drop(rx);
        assert_eq!(tx.send(2), Err(2));
    }

    #[test]
    fn full_ring_blocks_until_consumer_drains() {
        let (tx, rx) = ring::<u32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let producer = std::thread::spawn(move || {
            // Blocks until the consumer below pops a slot free.
            tx.send(3).unwrap();
            tx.send(4).unwrap();
        });
        let mut got = Vec::new();
        while let Some(v) = rx.recv() {
            got.push(v);
        }
        producer.join().unwrap();
        assert_eq!(got, vec![1, 2, 3, 4]);
    }

    #[test]
    fn receiver_drop_unblocks_a_waiting_sender() {
        let (tx, rx) = ring::<u32>(1);
        tx.send(1).unwrap();
        let producer = std::thread::spawn(move || tx.send(2));
        // Give the producer a chance to park on the full ring, then kill
        // the consumer: the parked send must fail rather than hang.
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(rx);
        assert_eq!(producer.join().unwrap(), Err(2));
    }

    #[test]
    fn shared_sender_supports_multiple_producers() {
        // The WAL command ring is shared by P ingress handles through one
        // Arc'd sender; every message must arrive exactly once and
        // per-producer order must be preserved.
        use std::sync::Arc;
        let (tx, rx) = ring::<(usize, u32)>(4);
        let tx = Arc::new(tx);
        let producers: Vec<_> = (0..3)
            .map(|p| {
                let tx = Arc::clone(&tx);
                std::thread::spawn(move || {
                    for i in 0..100u32 {
                        tx.send((p, i)).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let mut next = [0u32; 3];
        let mut total = 0;
        while let Some((p, i)) = rx.recv() {
            assert_eq!(i, next[p], "producer {p} out of order");
            next[p] += 1;
            total += 1;
        }
        for h in producers {
            h.join().unwrap();
        }
        assert_eq!(total, 300);
    }

    #[test]
    fn ring_fabric_builds_dedicated_lanes() {
        let (senders, receivers) = ring_fabric::<u32>(2, 3, 4);
        assert_eq!((senders.len(), receivers.len()), (2, 3));
        // Producer 1 → shard 2 must arrive only on shard 2's lane 1.
        senders[1][2].send(42).unwrap();
        assert_eq!(receivers[2][1].recv(), Some(42));
        drop(senders);
        for row in &receivers {
            for rx in row {
                assert_eq!(rx.recv(), None, "all lanes closed");
            }
        }
    }

    #[test]
    fn send_deadline_times_out_on_a_full_ring_and_returns_the_message() {
        use std::time::{Duration, Instant};
        let (tx, _rx) = ring::<u32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let start = Instant::now();
        let got = tx.send_deadline(3, Duration::from_millis(30));
        assert_eq!(got, Err(SendError::Full(3)));
        assert!(start.elapsed() >= Duration::from_millis(30));
        // The queued messages are untouched.
        assert_eq!(tx.len(), 2);
    }

    #[test]
    fn send_deadline_succeeds_once_the_consumer_drains() {
        use std::time::Duration;
        let (tx, rx) = ring::<u32>(1);
        tx.send(1).unwrap();
        let consumer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            let first = rx.recv();
            (first, rx.recv())
        });
        tx.send_deadline(2, Duration::from_secs(10)).unwrap();
        drop(tx);
        assert_eq!(consumer.join().unwrap(), (Some(1), Some(2)));
    }

    #[test]
    fn send_deadline_reports_a_dead_receiver() {
        use std::time::Duration;
        let (tx, rx) = ring::<u32>(1);
        tx.send(1).unwrap();
        drop(rx);
        assert_eq!(
            tx.send_deadline(2, Duration::from_secs(10)),
            Err(SendError::Closed(2))
        );
        assert_eq!(SendError::Closed(2).into_inner(), 2);
    }

    #[test]
    fn wait_capacity_observes_ready_full_and_closed() {
        use std::time::Duration;
        let (tx, rx) = ring::<u32>(1);
        assert_eq!(tx.wait_capacity(Duration::ZERO), Capacity::Ready);
        tx.send(1).unwrap();
        assert_eq!(
            tx.wait_capacity(Duration::from_millis(10)),
            Capacity::TimedOut
        );
        // A concurrent pop wakes a parked waiter into Ready.
        let waiter = std::thread::spawn(move || {
            let observed = tx.wait_capacity(Duration::from_secs(10));
            (tx, observed)
        });
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Some(1));
        let (tx, observed) = waiter.join().unwrap();
        assert_eq!(observed, Capacity::Ready);
        drop(rx);
        assert_eq!(tx.wait_capacity(Duration::ZERO), Capacity::Closed);
    }

    #[test]
    fn send_displacing_evicts_the_oldest() {
        let (tx, rx) = ring::<u32>(2);
        assert_eq!(tx.send_displacing(1), Ok(None));
        assert_eq!(tx.send_displacing(2), Ok(None));
        assert_eq!(tx.send_displacing(3), Ok(Some(1)), "head displaced");
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), Some(3));
        drop(rx);
        assert_eq!(tx.send_displacing(4), Err(4));
    }

    #[test]
    fn pool_recycles_and_respects_bound() {
        let pool = BatchPool::<u64>::new(2);
        let a = pool.take(16);
        let b = pool.take(16);
        let c = pool.take(16);
        assert_eq!(pool.allocs(), 3);
        assert_eq!(pool.reuses(), 0);
        pool.put(a);
        pool.put(b);
        pool.put(c); // over the bound: dropped
        let d = pool.take(16);
        assert!(d.is_empty() && d.capacity() >= 16, "recycled with capacity");
        let _e = pool.take(16);
        assert_eq!(pool.reuses(), 2, "only two buffers were retained");
        let _f = pool.take(16);
        assert_eq!(pool.allocs(), 4, "third take allocates again");
    }

    #[test]
    fn pool_keeps_grown_capacity_across_cycles() {
        let pool = BatchPool::<u64>::new(4);
        let mut buf = pool.take(8);
        buf.extend(0..1000);
        let grown = buf.capacity();
        pool.put(buf);
        let again = pool.take(8);
        assert!(again.is_empty());
        assert_eq!(again.capacity(), grown);
    }
}
