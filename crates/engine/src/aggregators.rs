//! Ready-made aggregator factories: every fd-core summary wired into the
//! engine's UDAF interface, plus the undecayed built-ins.
//!
//! Each `*_factory` function returns an [`AggregatorFactory`](crate::udaf::AggregatorFactory) ready to plug
//! into [`crate::udaf::QueryBuilder::aggregate`]. Factories correspond
//! one-to-one to the algorithms of the paper's experiments:
//!
//! | factory | paper role |
//! |---|---|
//! | [`count_factory`], [`sum_factory`] | undecayed GSQL `count(*)` / `sum(len)` (Figure 2 baseline) |
//! | [`fwd_count_factory`], [`fwd_sum_factory`] | forward-decayed count/sum, "poly"/"exp" curves of Figure 2 |
//! | [`eh_count_factory`], [`eh_sum_factory`] | backward decay via exponential histograms (Figure 2) |
//! | [`unary_hh_factory`] | "Unary HH" unweighted SpaceSaving (Figure 5) |
//! | [`fwd_hh_factory`] | weighted SpaceSaving under forward decay (Figures 4, 5) |
//! | [`cm_hh_factory`] | Count-Min backed decayed heavy hitters (ablation A5) |
//! | [`prefix_hh_factory`] | CKT prefix-hierarchy backward heavy hitters (Figures 4, 5) |
//! | [`sw_hh_factory`] | dyadic-time sliding-window backward heavy hitters |
//! | [`reservoir_factory`] | undecayed reservoir sample (Figure 3) |
//! | [`pri_sample_factory`] | `PRISAMP` priority sampling under forward decay (Figure 3) |
//! | [`wrs_factory`] | Efraimidis–Spirakis weighted reservoir (Theorem 6) |
//! | [`biased_reservoir_factory`] | Aggarwal's backward-decay sampler (Figure 3) |
//! | [`fwd_quantile_factory`] | decayed quantiles via weighted q-digest (Theorem 3) |
//! | [`distinct_factory`] | decayed count-distinct (Theorem 4) |
//!
//! Forward-decayed aggregators receive the **bucket start as landmark**,
//! exactly like the paper's `time % 60` idiom; simple forward-decayed
//! aggregates are *splittable* across the two-level architecture, UDAF-style
//! summaries run at the high level only (as in the paper's setup). Every
//! aggregator supports [`Aggregator::merge_boxed`], so per-shard partial
//! buckets combine losslessly (Section VI-B: frozen numerators make forward
//! decay summaries mergeable).

use std::any::Any;
use std::sync::Arc;

use fd_core::aggregates::{
    DecayedAverage, DecayedCount, DecayedExtremum, DecayedSum, DecayedVariance,
};
use fd_core::backward::{ExponentialHistogram, PrefixBackwardHH, SlidingWindowHH};
use fd_core::cm::DecayedCmHeavyHitters;
use fd_core::decay::{BackwardDecay, ForwardDecay};
use fd_core::distinct::DominanceSketch;
use fd_core::hash::mix64;
use fd_core::heavy_hitters::{DecayedHeavyHitters, UnarySpaceSaving};
use fd_core::quantiles::DecayedQuantiles;
use fd_core::sampling::{
    BiasedReservoir, PrioritySampler, ReservoirSampler, WeightedReservoir, WithReplacementSampler,
};
use fd_core::Mergeable;

use crate::tuple::{self, Packet};
use crate::udaf::{AggValue, Aggregator, FnFactory, ItemValue};

/// A value extractor: which numeric field of the tuple an aggregate sums.
pub type ValFn = Arc<dyn Fn(&Packet) -> f64 + Send + Sync>;
/// An item extractor: which field a heavy-hitter / sampler / distinct
/// aggregate operates over.
pub type ItemFn = Arc<dyn Fn(&Packet) -> u64 + Send + Sync>;

/// A backward decay function erased to a closure, so queries can choose it
/// at runtime (the Cohen–Strauss "decay specified at query time" setting).
#[derive(Clone)]
pub struct DynBackward(Arc<dyn Fn(f64) -> f64 + Send + Sync>);

impl DynBackward {
    /// Wraps any [`BackwardDecay`] implementation.
    pub fn from_decay<F: BackwardDecay>(f: F) -> Self {
        Self(Arc::new(move |a| f.f(a)))
    }

    /// Wraps a raw function of age.
    pub fn from_fn(f: impl Fn(f64) -> f64 + Send + Sync + 'static) -> Self {
        Self(Arc::new(f))
    }
}

impl BackwardDecay for DynBackward {
    #[inline]
    fn f(&self, age: f64) -> f64 {
        (self.0)(age)
    }
}

/// Derives a per-bucket RNG seed from a base seed.
fn bucket_seed(base: u64, bucket_start: u64) -> u64 {
    mix64(base ^ bucket_start)
}

/// Implements [`Aggregator::checkpoint`] / [`Aggregator::restore`] by
/// serializing the adapter's `inner` fd-core summary through
/// [`fd_core::checkpoint`]. Closures and query-time parameters (value
/// extractors, φ, decay) are not captured — the factory recreates them and
/// `restore` refills only the summary state.
macro_rules! inner_checkpoint {
    () => {
        fn checkpoint(&self) -> Option<Vec<u8>> {
            fd_core::checkpoint::to_bytes(&self.inner).ok()
        }
        fn checkpoint_into(&self, out: &mut Vec<u8>) -> Option<()> {
            fd_core::checkpoint::to_bytes_into(&self.inner, out).ok()
        }
        fn restore(&mut self, bytes: &[u8]) -> Result<(), fd_core::checkpoint::CodecError> {
            self.inner = fd_core::checkpoint::from_bytes(bytes)?;
            Ok(())
        }
    };
}

// ---------------------------------------------------------------------------
// Undecayed built-ins
// ---------------------------------------------------------------------------

struct CountAgg(u64);

impl Aggregator for CountAgg {
    fn update(&mut self, _: &Packet) {
        self.0 += 1;
    }
    fn merge_boxed(&mut self, other: Box<dyn Aggregator>) {
        self.0 += other
            .as_any_box()
            .downcast::<Self>()
            .expect("aggregator type mismatch")
            .0;
    }
    fn emit(&self, _t: f64) -> AggValue {
        AggValue::Float(self.0 as f64)
    }
    fn size_bytes(&self) -> usize {
        // The paper: "Undecayed methods store 4 byte integers".
        4
    }
    fn as_any_box(self: Box<Self>) -> Box<dyn Any> {
        self
    }
    fn checkpoint(&self) -> Option<Vec<u8>> {
        fd_core::checkpoint::to_bytes(&self.0).ok()
    }
    fn checkpoint_into(&self, out: &mut Vec<u8>) -> Option<()> {
        fd_core::checkpoint::to_bytes_into(&self.0, out).ok()
    }
    fn restore(&mut self, bytes: &[u8]) -> Result<(), fd_core::checkpoint::CodecError> {
        self.0 = fd_core::checkpoint::from_bytes(bytes)?;
        Ok(())
    }
}

/// Undecayed `count(*)` — the GSQL built-in of the paper's baseline query.
pub fn count_factory() -> Arc<FnFactory> {
    FnFactory::new("count", true, |_| Box::new(CountAgg(0)))
}

struct SumAgg {
    sum: f64,
    val: ValFn,
}

impl Aggregator for SumAgg {
    fn update(&mut self, pkt: &Packet) {
        self.sum += (self.val)(pkt);
    }
    fn supports_scaled_updates(&self) -> bool {
        true
    }
    fn update_scaled(&mut self, pkt: &Packet, scale: f64) {
        self.sum += (self.val)(pkt) * scale;
    }
    fn merge_boxed(&mut self, other: Box<dyn Aggregator>) {
        self.sum += other
            .as_any_box()
            .downcast::<Self>()
            .expect("aggregator type mismatch")
            .sum;
    }
    fn emit(&self, _t: f64) -> AggValue {
        AggValue::Float(self.sum)
    }
    fn size_bytes(&self) -> usize {
        4
    }
    fn as_any_box(self: Box<Self>) -> Box<dyn Any> {
        self
    }
    fn checkpoint(&self) -> Option<Vec<u8>> {
        fd_core::checkpoint::to_bytes(&self.sum).ok()
    }
    fn checkpoint_into(&self, out: &mut Vec<u8>) -> Option<()> {
        fd_core::checkpoint::to_bytes_into(&self.sum, out).ok()
    }
    fn restore(&mut self, bytes: &[u8]) -> Result<(), fd_core::checkpoint::CodecError> {
        self.sum = fd_core::checkpoint::from_bytes(bytes)?;
        Ok(())
    }
}

/// Undecayed `sum(expr)` over a tuple field.
pub fn sum_factory(val: impl Fn(&Packet) -> f64 + Send + Sync + 'static) -> Arc<FnFactory> {
    let val: ValFn = Arc::new(val);
    FnFactory::new("sum", true, move |_| {
        Box::new(SumAgg {
            sum: 0.0,
            val: val.clone(),
        })
    })
}

// ---------------------------------------------------------------------------
// Forward-decayed scalar aggregates (splittable)
// ---------------------------------------------------------------------------

/// Generates an adapter + factory for a forward-decayed scalar aggregate.
macro_rules! fwd_scalar_agg {
    ($agg:ident, $inner:ident, $factory:ident, $name:literal, update_t) => {
        struct $agg<G: ForwardDecay> {
            inner: $inner<G>,
        }
        impl<G: ForwardDecay> Aggregator for $agg<G> {
            inner_checkpoint!();
            fn update(&mut self, pkt: &Packet) {
                self.inner.update(pkt.timestamp());
            }
            fn supports_scaled_updates(&self) -> bool {
                true
            }
            fn update_scaled(&mut self, pkt: &Packet, scale: f64) {
                self.inner.update_weighted(pkt.timestamp(), scale);
            }
            fn merge_boxed(&mut self, other: Box<dyn Aggregator>) {
                let o = other
                    .as_any_box()
                    .downcast::<Self>()
                    .expect("aggregator type mismatch");
                self.inner.merge_from(&o.inner);
            }
            fn emit(&self, t: f64) -> AggValue {
                AggValue::Float(self.inner.query(t))
            }
            fn size_bytes(&self) -> usize {
                // The paper: "forward decay stores 8 byte floating point
                // values".
                8
            }
            fn as_any_box(self: Box<Self>) -> Box<dyn Any> {
                self
            }
        }
        #[doc = concat!("Forward-decayed ", $name, " (Theorem 1); splittable across LFTA/HFTA.")]
        pub fn $factory<G: ForwardDecay>(g: G) -> Arc<FnFactory> {
            FnFactory::new($name, true, move |bucket_start| {
                Box::new($agg {
                    inner: $inner::new(g.clone(), tuple::timestamp(bucket_start)),
                })
            })
        }
    };
    ($agg:ident, $inner:ident, $factory:ident, $name:literal, update_tv) => {
        struct $agg<G: ForwardDecay> {
            inner: $inner<G>,
            val: ValFn,
        }
        impl<G: ForwardDecay> Aggregator for $agg<G> {
            inner_checkpoint!();
            fn update(&mut self, pkt: &Packet) {
                self.inner.update(pkt.timestamp(), (self.val)(pkt));
            }
            fn supports_scaled_updates(&self) -> bool {
                true
            }
            fn update_scaled(&mut self, pkt: &Packet, scale: f64) {
                self.inner
                    .update_weighted(pkt.timestamp(), (self.val)(pkt), scale);
            }
            fn merge_boxed(&mut self, other: Box<dyn Aggregator>) {
                let o = other
                    .as_any_box()
                    .downcast::<Self>()
                    .expect("aggregator type mismatch");
                self.inner.merge_from(&o.inner);
            }
            fn emit(&self, t: f64) -> AggValue {
                AggValue::Float(self.inner.query(t))
            }
            fn size_bytes(&self) -> usize {
                8
            }
            fn as_any_box(self: Box<Self>) -> Box<dyn Any> {
                self
            }
        }
        #[doc = concat!("Forward-decayed ", $name, " over a tuple field (Theorem 1); splittable.")]
        pub fn $factory<G: ForwardDecay>(
            g: G,
            val: impl Fn(&Packet) -> f64 + Send + Sync + 'static,
        ) -> Arc<FnFactory> {
            let val: ValFn = Arc::new(val);
            FnFactory::new($name, true, move |bucket_start| {
                Box::new($agg {
                    inner: $inner::new(g.clone(), tuple::timestamp(bucket_start)),
                    val: val.clone(),
                })
            })
        }
    };
}

fwd_scalar_agg!(
    FwdCountAgg,
    DecayedCount,
    fwd_count_factory,
    "fwd_count",
    update_t
);
fwd_scalar_agg!(FwdSumAgg, DecayedSum, fwd_sum_factory, "fwd_sum", update_tv);

struct FwdAvgAgg<G: ForwardDecay> {
    inner: DecayedAverage<G>,
    val: ValFn,
}

impl<G: ForwardDecay> Aggregator for FwdAvgAgg<G> {
    inner_checkpoint!();
    fn update(&mut self, pkt: &Packet) {
        self.inner.update(pkt.timestamp(), (self.val)(pkt));
    }
    fn supports_scaled_updates(&self) -> bool {
        true
    }
    fn update_scaled(&mut self, pkt: &Packet, scale: f64) {
        self.inner
            .update_weighted(pkt.timestamp(), (self.val)(pkt), scale);
    }
    fn merge_boxed(&mut self, other: Box<dyn Aggregator>) {
        let o = other
            .as_any_box()
            .downcast::<Self>()
            .expect("aggregator type mismatch");
        self.inner.merge_from(&o.inner);
    }
    fn emit(&self, t: f64) -> AggValue {
        AggValue::Float(self.inner.query(t).unwrap_or(f64::NAN))
    }
    fn size_bytes(&self) -> usize {
        16
    }
    fn as_any_box(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// Forward-decayed average of a tuple field (Definition 5); splittable.
pub fn fwd_avg_factory<G: ForwardDecay>(
    g: G,
    val: impl Fn(&Packet) -> f64 + Send + Sync + 'static,
) -> Arc<FnFactory> {
    let val: ValFn = Arc::new(val);
    FnFactory::new("fwd_avg", true, move |bucket_start| {
        Box::new(FwdAvgAgg {
            inner: DecayedAverage::new(g.clone(), tuple::timestamp(bucket_start)),
            val: val.clone(),
        })
    })
}

struct FwdVarAgg<G: ForwardDecay> {
    inner: DecayedVariance<G>,
    val: ValFn,
}

impl<G: ForwardDecay> Aggregator for FwdVarAgg<G> {
    inner_checkpoint!();
    fn update(&mut self, pkt: &Packet) {
        self.inner.update(pkt.timestamp(), (self.val)(pkt));
    }
    fn merge_boxed(&mut self, other: Box<dyn Aggregator>) {
        let o = other
            .as_any_box()
            .downcast::<Self>()
            .expect("aggregator type mismatch");
        self.inner.merge_from(&o.inner);
    }
    fn emit(&self, t: f64) -> AggValue {
        AggValue::Float(self.inner.query(t).unwrap_or(f64::NAN))
    }
    fn size_bytes(&self) -> usize {
        24
    }
    fn as_any_box(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// Forward-decayed variance of a tuple field (Section IV-A); splittable.
pub fn fwd_var_factory<G: ForwardDecay>(
    g: G,
    val: impl Fn(&Packet) -> f64 + Send + Sync + 'static,
) -> Arc<FnFactory> {
    let val: ValFn = Arc::new(val);
    FnFactory::new("fwd_var", true, move |bucket_start| {
        Box::new(FwdVarAgg {
            inner: DecayedVariance::new(g.clone(), tuple::timestamp(bucket_start)),
            val: val.clone(),
        })
    })
}

struct FwdExtAgg<G: ForwardDecay> {
    inner: DecayedExtremum<G>,
    val: ValFn,
}

impl<G: ForwardDecay> Aggregator for FwdExtAgg<G> {
    inner_checkpoint!();
    fn update(&mut self, pkt: &Packet) {
        self.inner.update(pkt.timestamp(), (self.val)(pkt));
    }
    fn merge_boxed(&mut self, other: Box<dyn Aggregator>) {
        let o = other
            .as_any_box()
            .downcast::<Self>()
            .expect("aggregator type mismatch");
        self.inner.merge_from(&o.inner);
    }
    fn emit(&self, t: f64) -> AggValue {
        AggValue::Float(self.inner.query(t).map(|(v, _, _)| v).unwrap_or(f64::NAN))
    }
    fn size_bytes(&self) -> usize {
        24
    }
    fn as_any_box(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// Forward-decayed maximum of a tuple field (Definition 6); splittable.
pub fn fwd_max_factory<G: ForwardDecay>(
    g: G,
    val: impl Fn(&Packet) -> f64 + Send + Sync + 'static,
) -> Arc<FnFactory> {
    let val: ValFn = Arc::new(val);
    FnFactory::new("fwd_max", true, move |bucket_start| {
        Box::new(FwdExtAgg {
            inner: DecayedExtremum::max(g.clone(), tuple::timestamp(bucket_start)),
            val: val.clone(),
        })
    })
}

/// Forward-decayed minimum of a tuple field (Definition 6); splittable.
pub fn fwd_min_factory<G: ForwardDecay>(
    g: G,
    val: impl Fn(&Packet) -> f64 + Send + Sync + 'static,
) -> Arc<FnFactory> {
    let val: ValFn = Arc::new(val);
    FnFactory::new("fwd_min", true, move |bucket_start| {
        Box::new(FwdExtAgg {
            inner: DecayedExtremum::min(g.clone(), tuple::timestamp(bucket_start)),
            val: val.clone(),
        })
    })
}

// ---------------------------------------------------------------------------
// Backward-decay baselines via exponential histograms (high-level only)
// ---------------------------------------------------------------------------

/// An integer-valued field extractor (EH sums need integer bucket sizes).
pub type IntValFn = Arc<dyn Fn(&Packet) -> u64 + Send + Sync>;

struct EhAgg {
    inner: ExponentialHistogram,
    back: DynBackward,
    /// `None` → count; `Some(val)` → sum of `val(pkt)` (integer-valued).
    val: Option<IntValFn>,
}

impl Aggregator for EhAgg {
    inner_checkpoint!();
    fn update(&mut self, pkt: &Packet) {
        match &self.val {
            None => self.inner.insert(pkt.timestamp()),
            Some(v) => self.inner.insert_value(pkt.timestamp(), v(pkt).max(1)),
        }
    }
    fn merge_boxed(&mut self, other: Box<dyn Aggregator>) {
        let o = other
            .as_any_box()
            .downcast::<Self>()
            .expect("aggregator type mismatch");
        self.inner.merge_from(&o.inner);
    }
    fn emit(&self, t: f64) -> AggValue {
        AggValue::Float(self.inner.decayed_query(&self.back, t))
    }
    fn size_bytes(&self) -> usize {
        self.inner.size_bytes()
    }
    fn as_any_box(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// Backward-decayed count via an exponential histogram with error `ε`; the
/// decay function is applied at query time (Cohen–Strauss). High-level only.
pub fn eh_count_factory(epsilon: f64, back: DynBackward) -> Arc<FnFactory> {
    FnFactory::new("eh_count", false, move |_| {
        Box::new(EhAgg {
            inner: ExponentialHistogram::with_epsilon(epsilon),
            back: back.clone(),
            val: None,
        })
    })
}

/// Backward-decayed sum via an exponential histogram. High-level only.
pub fn eh_sum_factory(
    epsilon: f64,
    back: DynBackward,
    val: impl Fn(&Packet) -> u64 + Send + Sync + 'static,
) -> Arc<FnFactory> {
    let val: IntValFn = Arc::new(val);
    FnFactory::new("eh_sum", false, move |_| {
        Box::new(EhAgg {
            inner: ExponentialHistogram::with_epsilon(epsilon),
            back: back.clone(),
            val: Some(val.clone()),
        })
    })
}

// ---------------------------------------------------------------------------
// Heavy hitters
// ---------------------------------------------------------------------------

struct UnaryHhAgg {
    inner: UnarySpaceSaving,
    item: ItemFn,
    phi: f64,
}

impl Aggregator for UnaryHhAgg {
    inner_checkpoint!();
    fn update(&mut self, pkt: &Packet) {
        self.inner.update((self.item)(pkt));
    }
    fn merge_boxed(&mut self, other: Box<dyn Aggregator>) {
        let o = other
            .as_any_box()
            .downcast::<Self>()
            .expect("aggregator type mismatch");
        self.inner.merge_from(&o.inner);
    }
    fn emit(&self, _t: f64) -> AggValue {
        AggValue::Items(
            self.inner
                .heavy_hitters(self.phi)
                .into_iter()
                .map(|h| ItemValue {
                    item: h.item,
                    value: h.count,
                })
                .collect(),
        )
    }
    fn size_bytes(&self) -> usize {
        self.inner.size_bytes()
    }
    fn as_any_box(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// Undecayed φ-heavy-hitters with the unary-optimized SpaceSaving ("Unary
/// HH" of Figure 5). High-level only, as the paper's UDAFs were.
pub fn unary_hh_factory(
    epsilon: f64,
    phi: f64,
    item: impl Fn(&Packet) -> u64 + Send + Sync + 'static,
) -> Arc<FnFactory> {
    let item: ItemFn = Arc::new(item);
    FnFactory::new("unary_hh", false, move |_| {
        Box::new(UnaryHhAgg {
            inner: UnarySpaceSaving::with_epsilon(epsilon),
            item: item.clone(),
            phi,
        })
    })
}

struct FwdHhAgg<G: ForwardDecay> {
    inner: DecayedHeavyHitters<G>,
    item: ItemFn,
    phi: f64,
}

impl<G: ForwardDecay> Aggregator for FwdHhAgg<G> {
    inner_checkpoint!();
    fn update(&mut self, pkt: &Packet) {
        self.inner.update(pkt.timestamp(), (self.item)(pkt));
    }
    fn merge_boxed(&mut self, other: Box<dyn Aggregator>) {
        let o = other
            .as_any_box()
            .downcast::<Self>()
            .expect("aggregator type mismatch");
        self.inner.merge_from(&o.inner);
    }
    fn emit(&self, t: f64) -> AggValue {
        AggValue::Items(
            self.inner
                .heavy_hitters(self.phi, t)
                .into_iter()
                .map(|h| ItemValue {
                    item: h.item,
                    value: h.count,
                })
                .collect(),
        )
    }
    fn size_bytes(&self) -> usize {
        self.inner.size_bytes()
    }
    fn as_any_box(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// Forward-decayed φ-heavy-hitters via weighted SpaceSaving (Theorem 2).
/// High-level only.
pub fn fwd_hh_factory<G: ForwardDecay>(
    g: G,
    epsilon: f64,
    phi: f64,
    item: impl Fn(&Packet) -> u64 + Send + Sync + 'static,
) -> Arc<FnFactory> {
    let item: ItemFn = Arc::new(item);
    FnFactory::new("fwd_hh", false, move |bucket_start| {
        Box::new(FwdHhAgg {
            inner: DecayedHeavyHitters::with_epsilon(
                g.clone(),
                tuple::timestamp(bucket_start),
                epsilon,
            ),
            item: item.clone(),
            phi,
        })
    })
}

struct SwHhAgg {
    inner: SlidingWindowHH,
    back: DynBackward,
    item: ItemFn,
    phi: f64,
}

impl Aggregator for SwHhAgg {
    inner_checkpoint!();
    fn update(&mut self, pkt: &Packet) {
        self.inner.update(pkt.timestamp(), (self.item)(pkt));
    }
    fn merge_boxed(&mut self, other: Box<dyn Aggregator>) {
        let o = other
            .as_any_box()
            .downcast::<Self>()
            .expect("aggregator type mismatch");
        self.inner.merge_from(&o.inner);
    }
    fn emit(&self, t: f64) -> AggValue {
        AggValue::Items(
            self.inner
                .heavy_hitters(&self.back, t, self.phi)
                .into_iter()
                .map(|h| ItemValue {
                    item: h.item,
                    value: h.count,
                })
                .collect(),
        )
    }
    fn size_bytes(&self) -> usize {
        self.inner.size_bytes()
    }
    fn as_any_box(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// Backward-decayed φ-heavy-hitters via the dyadic sliding-window summary
/// (the Figure 4/5 baseline): every tuple updates `levels` time-interval
/// maps. High-level only.
pub fn sw_hh_factory(
    pane_secs: f64,
    levels: usize,
    back: DynBackward,
    phi: f64,
    item: impl Fn(&Packet) -> u64 + Send + Sync + 'static,
) -> Arc<FnFactory> {
    let item: ItemFn = Arc::new(item);
    FnFactory::new("sw_hh", false, move |_| {
        Box::new(SwHhAgg {
            inner: SlidingWindowHH::new(pane_secs, levels),
            back: back.clone(),
            item: item.clone(),
            phi,
        })
    })
}

struct CmHhAgg<G: ForwardDecay> {
    inner: DecayedCmHeavyHitters<G>,
    item: ItemFn,
}

impl<G: ForwardDecay> Aggregator for CmHhAgg<G> {
    inner_checkpoint!();
    fn update(&mut self, pkt: &Packet) {
        self.inner.update(pkt.timestamp(), (self.item)(pkt));
    }
    fn merge_boxed(&mut self, other: Box<dyn Aggregator>) {
        let o = other
            .as_any_box()
            .downcast::<Self>()
            .expect("aggregator type mismatch");
        self.inner.merge_from(&o.inner);
    }
    fn emit(&self, t: f64) -> AggValue {
        AggValue::Items(
            self.inner
                .heavy_hitters(t)
                .into_iter()
                .map(|h| ItemValue {
                    item: h.item,
                    value: h.count,
                })
                .collect(),
        )
    }
    fn size_bytes(&self) -> usize {
        self.inner.size_bytes()
    }
    fn as_any_box(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// Forward-decayed φ-heavy-hitters backed by a Count-Min sketch — the
/// alternative backend compared against weighted SpaceSaving in the A5
/// ablation. High-level only.
pub fn cm_hh_factory<G: ForwardDecay>(
    g: G,
    phi: f64,
    epsilon: f64,
    seed: u64,
    item: impl Fn(&Packet) -> u64 + Send + Sync + 'static,
) -> Arc<FnFactory> {
    let item: ItemFn = Arc::new(item);
    FnFactory::new("cm_hh", false, move |bucket_start| {
        Box::new(CmHhAgg {
            inner: DecayedCmHeavyHitters::new(
                g.clone(),
                tuple::timestamp(bucket_start),
                phi,
                epsilon,
                0.01,
                bucket_seed(seed, bucket_start),
            ),
            item: item.clone(),
        })
    })
}

struct PrefixHhAgg {
    inner: PrefixBackwardHH,
    back: DynBackward,
    item: ItemFn,
    phi: f64,
}

impl Aggregator for PrefixHhAgg {
    inner_checkpoint!();
    fn update(&mut self, pkt: &Packet) {
        self.inner.update(pkt.timestamp(), (self.item)(pkt));
    }
    fn merge_boxed(&mut self, other: Box<dyn Aggregator>) {
        let o = other
            .as_any_box()
            .downcast::<Self>()
            .expect("aggregator type mismatch");
        self.inner.merge_from(&o.inner);
    }
    fn emit(&self, t: f64) -> AggValue {
        AggValue::Items(
            self.inner
                .heavy_hitters(&self.back, t, self.phi)
                .into_iter()
                .map(|h| ItemValue {
                    item: h.item,
                    value: h.count,
                })
                .collect(),
        )
    }
    fn size_bytes(&self) -> usize {
        self.inner.size_bytes()
    }
    fn as_any_box(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// Backward-decayed φ-heavy-hitters via the prefix-hierarchy structure of
/// Cormode–Korn–Tirthapura — the paper's actual Figure 4/5 baseline: every
/// tuple inserts into `domain_bits + 1` exponential histograms. High-level
/// only.
pub fn prefix_hh_factory(
    domain_bits: u32,
    epsilon: f64,
    back: DynBackward,
    phi: f64,
    item: impl Fn(&Packet) -> u64 + Send + Sync + 'static,
) -> Arc<FnFactory> {
    let item: ItemFn = Arc::new(item);
    FnFactory::new("prefix_hh", false, move |_| {
        Box::new(PrefixHhAgg {
            inner: PrefixBackwardHH::new(domain_bits, epsilon),
            back: back.clone(),
            item: item.clone(),
            phi,
        })
    })
}

// ---------------------------------------------------------------------------
// Samplers
// ---------------------------------------------------------------------------

struct ReservoirAgg {
    inner: ReservoirSampler<u64>,
    item: ItemFn,
}

impl Aggregator for ReservoirAgg {
    fn update(&mut self, pkt: &Packet) {
        self.inner.update((self.item)(pkt));
    }
    fn merge_boxed(&mut self, other: Box<dyn Aggregator>) {
        let o = other
            .as_any_box()
            .downcast::<Self>()
            .expect("aggregator type mismatch");
        self.inner.merge_from(&o.inner);
    }
    fn emit(&self, _t: f64) -> AggValue {
        AggValue::Items(
            self.inner
                .sample()
                .iter()
                .map(|&item| ItemValue { item, value: 1.0 })
                .collect(),
        )
    }
    fn size_bytes(&self) -> usize {
        self.inner.capacity() * 8 + 32
    }
    fn as_any_box(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// Undecayed reservoir sample of size `k` (the Figure 3 baseline).
pub fn reservoir_factory(
    k: usize,
    seed: u64,
    item: impl Fn(&Packet) -> u64 + Send + Sync + 'static,
) -> Arc<FnFactory> {
    let item: ItemFn = Arc::new(item);
    FnFactory::new("reservoir", false, move |bucket_start| {
        Box::new(ReservoirAgg {
            inner: ReservoirSampler::new(k, bucket_seed(seed, bucket_start)),
            item: item.clone(),
        })
    })
}

struct PriSampleAgg<G: ForwardDecay> {
    inner: PrioritySampler<u64, G>,
    item: ItemFn,
}

impl<G: ForwardDecay> Aggregator for PriSampleAgg<G> {
    fn update(&mut self, pkt: &Packet) {
        let key = (self.item)(pkt);
        self.inner.update(pkt.timestamp(), &key);
    }
    fn merge_boxed(&mut self, other: Box<dyn Aggregator>) {
        let o = other
            .as_any_box()
            .downcast::<Self>()
            .expect("aggregator type mismatch");
        self.inner.merge_from(&o.inner);
    }
    fn emit(&self, _t: f64) -> AggValue {
        AggValue::Items(
            self.inner
                .sample()
                .iter()
                .map(|e| ItemValue {
                    item: e.item,
                    value: 1.0,
                })
                .collect(),
        )
    }
    fn size_bytes(&self) -> usize {
        self.inner.capacity() * 32 + 64
    }
    fn as_any_box(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// Priority sampling under forward decay — the paper's `PRISAMP(srcIP,
/// exp(time % 60))` UDAF (Figure 3).
pub fn pri_sample_factory<G: ForwardDecay>(
    g: G,
    k: usize,
    seed: u64,
    item: impl Fn(&Packet) -> u64 + Send + Sync + 'static,
) -> Arc<FnFactory> {
    let item: ItemFn = Arc::new(item);
    FnFactory::new("prisamp", false, move |bucket_start| {
        Box::new(PriSampleAgg {
            inner: PrioritySampler::new(
                g.clone(),
                tuple::timestamp(bucket_start),
                k,
                bucket_seed(seed, bucket_start),
            ),
            item: item.clone(),
        })
    })
}

struct WrsAgg<G: ForwardDecay> {
    inner: WeightedReservoir<u64, G>,
    item: ItemFn,
}

impl<G: ForwardDecay> Aggregator for WrsAgg<G> {
    fn update(&mut self, pkt: &Packet) {
        let key = (self.item)(pkt);
        self.inner.update(pkt.timestamp(), &key);
    }
    fn merge_boxed(&mut self, other: Box<dyn Aggregator>) {
        let o = other
            .as_any_box()
            .downcast::<Self>()
            .expect("aggregator type mismatch");
        self.inner.merge_from(&o.inner);
    }
    fn emit(&self, _t: f64) -> AggValue {
        AggValue::Items(
            self.inner
                .sample()
                .iter()
                .map(|e| ItemValue {
                    item: e.item,
                    value: 1.0,
                })
                .collect(),
        )
    }
    fn size_bytes(&self) -> usize {
        self.inner.capacity() * 32 + 64
    }
    fn as_any_box(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// Weighted reservoir sampling (Efraimidis–Spirakis) under forward decay
/// (Theorem 6).
pub fn wrs_factory<G: ForwardDecay>(
    g: G,
    k: usize,
    seed: u64,
    item: impl Fn(&Packet) -> u64 + Send + Sync + 'static,
) -> Arc<FnFactory> {
    let item: ItemFn = Arc::new(item);
    FnFactory::new("wrs", false, move |bucket_start| {
        Box::new(WrsAgg {
            inner: WeightedReservoir::new(
                g.clone(),
                tuple::timestamp(bucket_start),
                k,
                bucket_seed(seed, bucket_start),
            ),
            item: item.clone(),
        })
    })
}

struct WithReplacementAgg<G: ForwardDecay> {
    inner: WithReplacementSampler<u64, G>,
    item: ItemFn,
}

impl<G: ForwardDecay> Aggregator for WithReplacementAgg<G> {
    fn update(&mut self, pkt: &Packet) {
        let key = (self.item)(pkt);
        self.inner.update(pkt.timestamp(), &key);
    }
    fn merge_boxed(&mut self, other: Box<dyn Aggregator>) {
        let o = other
            .as_any_box()
            .downcast::<Self>()
            .expect("aggregator type mismatch");
        self.inner.merge_from(&o.inner);
    }
    fn emit(&self, _t: f64) -> AggValue {
        AggValue::Items(
            self.inner
                .sample()
                .iter()
                .map(|&&item| ItemValue { item, value: 1.0 })
                .collect(),
        )
    }
    fn size_bytes(&self) -> usize {
        self.inner.capacity() * 16 + 48
    }
    fn as_any_box(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// Sampling with replacement under forward decay (Theorem 5): `s`
/// independent chains.
pub fn with_replacement_factory<G: ForwardDecay>(
    g: G,
    s: usize,
    seed: u64,
    item: impl Fn(&Packet) -> u64 + Send + Sync + 'static,
) -> Arc<FnFactory> {
    let item: ItemFn = Arc::new(item);
    FnFactory::new("swr", false, move |bucket_start| {
        Box::new(WithReplacementAgg {
            inner: WithReplacementSampler::new(
                g.clone(),
                tuple::timestamp(bucket_start),
                s,
                bucket_seed(seed, bucket_start),
            ),
            item: item.clone(),
        })
    })
}

struct BiasedReservoirAgg {
    inner: BiasedReservoir<u64>,
    item: ItemFn,
}

impl Aggregator for BiasedReservoirAgg {
    fn update(&mut self, pkt: &Packet) {
        self.inner.update((self.item)(pkt));
    }
    fn merge_boxed(&mut self, other: Box<dyn Aggregator>) {
        let o = other
            .as_any_box()
            .downcast::<Self>()
            .expect("aggregator type mismatch");
        self.inner.merge_from(&o.inner);
    }
    fn emit(&self, _t: f64) -> AggValue {
        AggValue::Items(
            self.inner
                .sample()
                .iter()
                .map(|&item| ItemValue { item, value: 1.0 })
                .collect(),
        )
    }
    fn size_bytes(&self) -> usize {
        self.inner.capacity() * 8 + 32
    }
    fn as_any_box(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// Aggarwal's biased reservoir (backward exponential decay baseline of
/// Figure 3).
pub fn biased_reservoir_factory(
    lambda: f64,
    seed: u64,
    item: impl Fn(&Packet) -> u64 + Send + Sync + 'static,
) -> Arc<FnFactory> {
    let item: ItemFn = Arc::new(item);
    FnFactory::new("aggarwal", false, move |bucket_start| {
        Box::new(BiasedReservoirAgg {
            inner: BiasedReservoir::new(lambda, bucket_seed(seed, bucket_start)),
            item: item.clone(),
        })
    })
}

// ---------------------------------------------------------------------------
// Multi-aggregate composition
// ---------------------------------------------------------------------------

struct MultiAgg {
    parts: Vec<Box<dyn Aggregator>>,
}

impl Aggregator for MultiAgg {
    fn update(&mut self, pkt: &Packet) {
        for p in &mut self.parts {
            p.update(pkt);
        }
    }
    fn supports_scaled_updates(&self) -> bool {
        self.parts.iter().all(|p| p.supports_scaled_updates())
    }
    fn update_scaled(&mut self, pkt: &Packet, scale: f64) {
        for p in &mut self.parts {
            p.update_scaled(pkt, scale);
        }
    }
    fn merge_boxed(&mut self, other: Box<dyn Aggregator>) {
        let o = other
            .as_any_box()
            .downcast::<Self>()
            .expect("aggregator type mismatch");
        assert_eq!(self.parts.len(), o.parts.len(), "aggregate arity mismatch");
        for (mine, theirs) in self.parts.iter_mut().zip(o.parts) {
            mine.merge_boxed(theirs);
        }
    }
    fn emit(&self, t: f64) -> AggValue {
        AggValue::Multi(self.parts.iter().map(|p| p.emit(t)).collect())
    }
    fn size_bytes(&self) -> usize {
        self.parts.iter().map(|p| p.size_bytes()).sum()
    }
    fn as_any_box(self: Box<Self>) -> Box<dyn Any> {
        self
    }
    fn checkpoint(&self) -> Option<Vec<u8>> {
        let parts: Option<Vec<Vec<u8>>> = self.parts.iter().map(|p| p.checkpoint()).collect();
        fd_core::checkpoint::to_bytes(&parts?).ok()
    }
    fn checkpoint_into(&self, out: &mut Vec<u8>) -> Option<()> {
        // Same wire shape as `checkpoint` (a length-prefixed seq of
        // length-prefixed part states), written without the intermediate
        // `Vec<Vec<u8>>`.
        fd_core::checkpoint::put_u64(out, self.parts.len() as u64);
        for part in &self.parts {
            let len_pos = out.len();
            fd_core::checkpoint::put_u64(out, 0);
            part.checkpoint_into(out)?;
            let len = (out.len() - len_pos - 8) as u64;
            out[len_pos..len_pos + 8].copy_from_slice(&len.to_le_bytes());
        }
        Some(())
    }
    fn restore(&mut self, bytes: &[u8]) -> Result<(), fd_core::checkpoint::CodecError> {
        let parts: Vec<Vec<u8>> = fd_core::checkpoint::from_bytes(bytes)?;
        if parts.len() != self.parts.len() {
            return Err(fd_core::checkpoint::CodecError::new(
                "aggregate arity mismatch",
            ));
        }
        for (mine, snap) in self.parts.iter_mut().zip(&parts) {
            mine.restore(snap)?;
        }
        Ok(())
    }
}

/// Composes several aggregates over the same groups — GSQL's
/// `select count(*), sum(len), …` shape. Each row's value is an
/// [`AggValue::Multi`] with one entry per component, in order. The combined
/// aggregate is splittable only if every component is.
///
/// ```
/// use fd_engine::prelude::*;
/// use fd_core::decay::Monomial;
///
/// let combo = multi_factory(vec![
///     count_factory(),
///     fwd_sum_factory(Monomial::quadratic(), |p| p.len as f64),
/// ]);
/// assert!(combo.splittable());
/// ```
pub fn multi_factory(parts: Vec<Arc<FnFactory>>) -> Arc<FnFactory> {
    assert!(!parts.is_empty(), "need at least one component aggregate");
    let splittable = parts.iter().all(|p| {
        use crate::udaf::AggregatorFactory as _;
        p.splittable()
    });
    let name = {
        use crate::udaf::AggregatorFactory as _;
        parts.iter().map(|p| p.name()).collect::<Vec<_>>().join("+")
    };
    FnFactory::new(name, splittable, move |bucket_start| {
        use crate::udaf::AggregatorFactory as _;
        Box::new(MultiAgg {
            parts: parts.iter().map(|p| p.make(bucket_start)).collect(),
        })
    })
}

// ---------------------------------------------------------------------------
// Quantiles and count distinct
// ---------------------------------------------------------------------------

struct FwdQuantileAgg<G: ForwardDecay> {
    inner: DecayedQuantiles<G>,
    val: ItemFn,
    phis: Vec<f64>,
}

impl<G: ForwardDecay> Aggregator for FwdQuantileAgg<G> {
    inner_checkpoint!();
    fn update(&mut self, pkt: &Packet) {
        self.inner.update(pkt.timestamp(), (self.val)(pkt));
    }
    fn merge_boxed(&mut self, other: Box<dyn Aggregator>) {
        let o = other
            .as_any_box()
            .downcast::<Self>()
            .expect("aggregator type mismatch");
        self.inner.merge_from(&o.inner);
    }
    fn emit(&self, t: f64) -> AggValue {
        AggValue::Items(
            self.phis
                .iter()
                .filter_map(|&phi| {
                    self.inner.quantile(phi, t).map(|v| ItemValue {
                        item: v,
                        value: phi,
                    })
                })
                .collect(),
        )
    }
    fn size_bytes(&self) -> usize {
        self.inner.size_bytes()
    }
    fn as_any_box(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// Forward-decayed φ-quantiles via the weighted q-digest (Theorem 3): emits
/// one `(value, φ)` item per requested quantile. Values must lie in
/// `[0, 2^bits)`. High-level only.
pub fn fwd_quantile_factory<G: ForwardDecay>(
    g: G,
    bits: u32,
    epsilon: f64,
    phis: Vec<f64>,
    val: impl Fn(&Packet) -> u64 + Send + Sync + 'static,
) -> Arc<FnFactory> {
    let val: ItemFn = Arc::new(val);
    FnFactory::new("fwd_quantiles", false, move |bucket_start| {
        Box::new(FwdQuantileAgg {
            inner: DecayedQuantiles::new(g.clone(), tuple::timestamp(bucket_start), bits, epsilon),
            val: val.clone(),
            phis: phis.clone(),
        })
    })
}

struct DistinctAgg<G: ForwardDecay> {
    inner: DominanceSketch<G>,
    item: ItemFn,
}

impl<G: ForwardDecay> Aggregator for DistinctAgg<G> {
    inner_checkpoint!();
    fn update(&mut self, pkt: &Packet) {
        self.inner.update(pkt.timestamp(), (self.item)(pkt));
    }
    fn merge_boxed(&mut self, other: Box<dyn Aggregator>) {
        let o = other
            .as_any_box()
            .downcast::<Self>()
            .expect("aggregator type mismatch");
        self.inner.merge_from(&o.inner);
    }
    fn emit(&self, t: f64) -> AggValue {
        AggValue::Float(self.inner.query(t))
    }
    fn size_bytes(&self) -> usize {
        self.inner.size_bytes()
    }
    fn as_any_box(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// Forward-decayed count-distinct via the dominance-norm sketch
/// (Theorem 4). High-level only. All bucket instances share the hash seed
/// so partial results remain mergeable.
pub fn distinct_factory<G: ForwardDecay>(
    g: G,
    epsilon: f64,
    seed: u64,
    item: impl Fn(&Packet) -> u64 + Send + Sync + 'static,
) -> Arc<FnFactory> {
    let item: ItemFn = Arc::new(item);
    FnFactory::new("fwd_distinct", false, move |bucket_start| {
        Box::new(DistinctAgg {
            inner: DominanceSketch::new(g.clone(), tuple::timestamp(bucket_start), epsilon, seed),
            item: item.clone(),
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::{Micros, Proto, MICROS_PER_SEC};
    use crate::udaf::AggregatorFactory;
    use fd_core::decay::{BackExponential, Exponential, Monomial, NoDecay};

    fn pkt(ts_s: f64, dst_ip: u32, len: u32) -> Packet {
        Packet {
            ts: (ts_s * MICROS_PER_SEC as f64) as Micros,
            src_ip: dst_ip ^ 0xFFFF,
            dst_ip,
            src_port: 1,
            dst_port: 80,
            len,
            proto: Proto::Tcp,
        }
    }

    #[test]
    fn count_and_sum_builtin() {
        let cf = count_factory();
        let sf = sum_factory(|p| p.len as f64);
        let mut c = cf.make(0);
        let mut s = sf.make(0);
        for i in 0..10 {
            let p = pkt(i as f64, 1, 100);
            c.update(&p);
            s.update(&p);
        }
        assert_eq!(c.emit(60.0), AggValue::Float(10.0));
        assert_eq!(s.emit(60.0), AggValue::Float(1000.0));
        assert!(cf.splittable() && sf.splittable());
    }

    #[test]
    fn fwd_sum_matches_paper_example() {
        // Example 2: L = 100 (bucket start), g = n², t = 110.
        let f = fwd_sum_factory(Monomial::quadratic(), |p| p.len as f64);
        let mut a = f.make(100 * MICROS_PER_SEC);
        for (t, v) in [(105.0, 4), (107.0, 8), (103.0, 3), (108.0, 6), (104.0, 4)] {
            a.update(&pkt(t, 1, v));
        }
        let got = a.emit(110.0).as_float().expect("float");
        assert!((got - 9.67).abs() < 1e-9);
    }

    #[test]
    fn fwd_aggregates_merge_like_concat() {
        let f = fwd_var_factory(Exponential::new(0.1), |p| p.len as f64);
        let mut whole = f.make(0);
        let mut a = f.make(0);
        let b_box = {
            let mut b = f.make(0);
            for i in 0..50 {
                let p = pkt(i as f64, 1, 100 + (i % 7) as u32);
                whole.update(&p);
                if i % 2 == 0 {
                    a.update(&p);
                } else {
                    b.update(&p);
                }
            }
            b
        };
        // `whole` is missing the even items fed only to `a`… rebuild:
        let mut whole2 = f.make(0);
        for i in 0..50 {
            let p = pkt(i as f64, 1, 100 + (i % 7) as u32);
            whole2.update(&p);
        }
        a.merge_boxed(b_box);
        let (x, y) = (
            whole2.emit(60.0).as_float().expect("float"),
            a.emit(60.0).as_float().expect("float"),
        );
        assert!((x - y).abs() < 1e-9 * x.abs().max(1.0));
    }

    #[test]
    fn eh_count_decays_at_query_time() {
        let back = DynBackward::from_decay(BackExponential::new(0.1));
        let f = eh_count_factory(0.05, back);
        assert!(!f.splittable());
        let mut a = f.make(0);
        for i in 0..1000 {
            a.update(&pkt(i as f64 * 0.06, 1, 100));
        }
        let decayed = a.emit(60.0).as_float().expect("float");
        // Exact decayed count: Σ e^{-0.1 (60 − 0.06 i)}.
        let exact: f64 = (0..1000)
            .map(|i| (-0.1f64 * (60.0 - 0.06 * i as f64)).exp())
            .sum();
        assert!(
            (decayed - exact).abs() / exact < 0.15,
            "{decayed} vs {exact}"
        );
    }

    #[test]
    fn hh_aggregators_find_hot_host() {
        let mk_stream = || {
            (0..2000u64).map(|i| pkt(i as f64 * 0.01, if i % 2 == 0 { 42 } else { i as u32 }, 100))
        };
        for f in [
            unary_hh_factory(0.01, 0.3, |p| p.dst_host()),
            fwd_hh_factory(Monomial::quadratic(), 0.01, 0.3, |p| p.dst_host()),
            sw_hh_factory(
                5.0,
                3,
                DynBackward::from_decay(BackExponential::new(0.01)),
                0.3,
                |p| p.dst_host(),
            ),
        ] {
            let mut a = f.make(0);
            for p in mk_stream() {
                a.update(&p);
            }
            let items = a.emit(20.0);
            let hits = items.as_items().expect("items");
            assert_eq!(hits.len(), 1, "{}", f.name());
            assert_eq!(hits[0].item, 42, "{}", f.name());
        }
    }

    #[test]
    fn sampler_aggregators_emit_k_items() {
        for f in [
            reservoir_factory(50, 7, |p| p.src_host()),
            pri_sample_factory(Exponential::new(0.1), 50, 7, |p| p.src_host()),
            wrs_factory(Exponential::new(0.1), 50, 7, |p| p.src_host()),
            with_replacement_factory(NoDecay, 50, 7, |p| p.src_host()),
        ] {
            let mut a = f.make(0);
            for i in 0..5000u64 {
                a.update(&pkt(i as f64 * 0.01, i as u32, 100));
            }
            let v = a.emit(60.0);
            assert_eq!(v.as_items().expect("items").len(), 50, "{}", f.name());
        }
    }

    #[test]
    fn biased_reservoir_aggregator_runs() {
        let f = biased_reservoir_factory(0.01, 3, |p| p.src_host());
        let mut a = f.make(0);
        for i in 0..5000u64 {
            a.update(&pkt(i as f64 * 0.01, i as u32, 100));
        }
        let items = a.emit(60.0);
        assert!(items.as_items().expect("items").len() <= 100);
        assert!(!items.as_items().expect("items").is_empty());
    }

    #[test]
    fn quantile_aggregator_reports_decayed_median() {
        let f = fwd_quantile_factory(Exponential::new(0.2), 12, 0.02, vec![0.5], |p| p.len as u64);
        let mut a = f.make(0);
        for i in 0..500 {
            a.update(&pkt(i as f64 * 0.1, 1, 100)); // early small lengths
        }
        for i in 500..600 {
            a.update(&pkt(i as f64 * 0.1, 1, 1500)); // late large lengths
        }
        let items = a.emit(60.0);
        assert_eq!(items.as_items().expect("items")[0].item, 1500);
    }

    #[test]
    fn distinct_aggregator_counts_hosts() {
        let f = distinct_factory(NoDecay, 0.15, 11, |p| p.src_host());
        let mut a = f.make(0);
        for i in 0..20_000u64 {
            a.update(&pkt(i as f64 * 0.001, (i % 500) as u32, 100));
        }
        let d = a.emit(30.0).as_float().expect("float");
        assert!((d - 500.0).abs() / 500.0 < 0.35, "distinct estimate {d}");
    }

    #[test]
    fn sampler_seeds_differ_per_bucket() {
        let f = reservoir_factory(5, 7, |p| p.src_host());
        let mut a0 = f.make(0);
        let mut a1 = f.make(60 * MICROS_PER_SEC);
        for i in 0..1000u64 {
            let p = pkt(i as f64 * 0.01, i as u32, 100);
            a0.update(&p);
            a1.update(&p);
        }
        // Different seeds → almost surely different samples.
        assert_ne!(a0.emit(60.0), a1.emit(60.0));
    }

    #[test]
    fn multi_factory_composes_and_splits() {
        let combo = multi_factory(vec![
            count_factory(),
            sum_factory(|p| p.len as f64),
            fwd_sum_factory(Monomial::quadratic(), |p| p.len as f64),
        ]);
        use crate::udaf::AggregatorFactory as _;
        assert!(combo.splittable());
        assert_eq!(combo.name(), "count+sum+fwd_sum");
        let mut a = combo.make(0);
        let mut b = combo.make(0);
        for i in 0..10 {
            a.update(&pkt(i as f64, 1, 100));
            b.update(&pkt(10.0 + i as f64, 1, 100));
        }
        a.merge_boxed(b);
        let v = a.emit(60.0);
        let parts = v.as_multi().expect("multi");
        assert_eq!(parts[0].as_float(), Some(20.0));
        assert_eq!(parts[1].as_float(), Some(2000.0));
        assert!(parts[2].as_float().unwrap() > 0.0);
    }

    #[test]
    fn multi_factory_is_high_level_when_any_part_is() {
        let combo = multi_factory(vec![
            count_factory(),
            unary_hh_factory(0.1, 0.1, |p| p.dst_host()),
        ]);
        use crate::udaf::AggregatorFactory as _;
        assert!(!combo.splittable());
    }

    #[test]
    fn eh_merge_combines_counts() {
        let back = DynBackward::from_fn(|_| 1.0);
        let f = eh_count_factory(0.1, back.clone());
        let mut a = f.make(0);
        let mut b = f.make(0);
        let mut whole = f.make(0);
        for i in 0..20 {
            let p = pkt(i as f64 * 0.5, 1, 100);
            if i % 2 == 0 {
                a.update(&p);
            } else {
                b.update(&p);
            }
            whole.update(&p);
        }
        a.merge_boxed(b);
        let (AggValue::Float(merged), AggValue::Float(expected)) = (a.emit(10.0), whole.emit(10.0))
        else {
            panic!("eh count emits floats");
        };
        // EH merge is approximate: same epsilon bound as a single histogram.
        assert!((merged - expected).abs() <= 0.1 * expected + 1e-9);
    }

    #[test]
    #[should_panic(expected = "aggregator type mismatch")]
    fn merge_across_aggregator_types_panics() {
        let mut a = count_factory().make(0);
        let b = sum_factory(|p| p.len as f64).make(0);
        a.merge_boxed(b);
    }
}
