//! The query execution pipeline: selection → (LFTA) → HFTA → output rows.
//!
//! Mirrors Gigascope's two-level architecture (Section VIII of the paper):
//! splittable aggregates are partially aggregated in the fixed-size
//! low-level table ([`crate::lfta::Lfta`]) and combined in the high-level
//! hash map here; non-splittable aggregates (the UDAFs, "written to run at
//! the high-level only") receive raw tuples directly. Figure 2(b) of the
//! paper disables the split — [`crate::udaf::QueryBuilder::two_level`]
//! reproduces that ablation.
//!
//! Time buckets close when the watermark (largest timestamp seen) passes the
//! bucket end plus the query's out-of-order slack — the engine's stand-in
//! for GS's punctuation/heartbeat mechanism.

use std::collections::{BTreeMap, HashMap};

use crate::lfta::Lfta;
use crate::tuple::{secs, Micros, Packet};
use crate::udaf::{AggValue, Aggregator, Query};

/// One output row of a continuous query: a closed (bucket, group) with its
/// aggregate value.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Row {
    /// Start of the time bucket (microseconds).
    pub bucket_start: Micros,
    /// Group key.
    pub key: u64,
    /// The aggregate result, evaluated at the bucket end.
    pub value: AggValue,
}

/// A stream element: data or control.
///
/// GS avoids query blocking on idle or lossy feeds with *heartbeats* and
/// *punctuations* (Johnson et al., VLDB 2005; Tucker et al., TKDE 2003,
/// both cited in the paper's introduction): control tuples promising that
/// no data tuple with a smaller timestamp will follow, which lets operators
/// close time buckets without waiting for data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StreamEvent {
    /// A data tuple.
    Data(Packet),
    /// A punctuation: no later data tuple will carry a timestamp below this
    /// value. Advances the watermark (and closes due buckets) even when the
    /// data itself has gone quiet.
    Punctuation(Micros),
}

/// Execution counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct EngineStats {
    /// Tuples offered to the engine.
    pub tuples_in: u64,
    /// Tuples rejected by the selection predicate.
    pub filtered: u64,
    /// Tuples arriving after their bucket closed (dropped, counted — the
    /// out-of-order support of forward decay needs slack > 0 to use them).
    pub late_drops: u64,
    /// Partial aggregates evicted from the LFTA by collisions.
    pub lfta_evictions: u64,
    /// Output rows emitted.
    pub rows_out: u64,
    /// Buckets closed.
    pub buckets_closed: u64,
}

/// A closed (bucket, group) carrying its raw aggregation state instead of
/// an emitted value — the unit of cross-shard combination.
///
/// [`crate::shard::ShardedEngine`] runs one [`Engine`] per shard in state
/// mode (see [`Engine::keep_closed_state`]); when a shard closes a bucket
/// it hands back `ClosedGroup`s, and the combiner folds same-`(bucket,
/// key)` groups together with [`Aggregator::merge_boxed`] before emitting —
/// exactly the merge the paper's Section VI-B shows forward-decay
/// summaries support (frozen numerators make partial summaries mergeable).
pub struct ClosedGroup {
    /// Time-bucket id (`ts / bucket_micros`).
    pub bucket: u64,
    /// Group key.
    pub key: u64,
    /// The group's aggregation state at close time.
    pub agg: Box<dyn Aggregator>,
}

/// A running instance of one continuous query.
pub struct Engine {
    query: Query,
    lfta: Option<Lfta>,
    split: bool,
    /// bucket id → (group key → high-level aggregate).
    buckets: BTreeMap<u64, HashMap<u64, Box<dyn Aggregator>>>,
    /// Closed rows awaiting collection.
    out: Vec<Row>,
    /// Closed raw state awaiting collection (state mode only).
    closed_state: Option<Vec<ClosedGroup>>,
    watermark: Micros,
    /// Buckets at ids below this are closed.
    closed_below: u64,
    stats: EngineStats,
    /// Size of the last [`Engine::checkpoint`] blob, used to pre-size the
    /// next one (supervised workers checkpoint on their critical path, so
    /// growth reallocations are worth avoiding).
    last_ckpt_bytes: std::cell::Cell<usize>,
}

impl Engine {
    /// Instantiates the query.
    pub fn new(query: Query) -> Self {
        let split = query.two_level && query.aggregate.splittable();
        let lfta = split.then(|| Lfta::new(query.lfta_slots));
        Self {
            query,
            lfta,
            split,
            buckets: BTreeMap::new(),
            out: Vec::new(),
            closed_state: None,
            watermark: 0,
            closed_below: 0,
            stats: EngineStats::default(),
            last_ckpt_bytes: std::cell::Cell::new(64 * 1024),
        }
    }

    /// Switches the engine to *state mode*: closed buckets retain their raw
    /// [`Aggregator`] state (collect with [`Engine::drain_closed_state`] /
    /// [`Engine::finish_state`]) instead of emitting [`Row`]s. Used by the
    /// sharded engine, whose combiner must merge per-shard partial states
    /// before evaluating them.
    ///
    /// # Panics
    /// Panics if any bucket has already closed in row mode.
    pub fn keep_closed_state(&mut self) {
        assert!(
            self.stats.buckets_closed == 0,
            "keep_closed_state must be called before any bucket closes"
        );
        self.closed_state = Some(Vec::new());
    }

    /// Whether the two-level split is active for this query.
    pub fn is_split(&self) -> bool {
        self.split
    }

    /// The query's display name.
    pub fn query_name(&self) -> &str {
        &self.query.name
    }

    /// Offers one tuple to the query.
    pub fn process(&mut self, pkt: &Packet) {
        self.stats.tuples_in += 1;
        if let Some(f) = &self.query.filter {
            if !f(pkt) {
                self.stats.filtered += 1;
                return;
            }
        }
        let bucket = pkt.ts / self.query.bucket_micros;
        if bucket < self.closed_below {
            self.stats.late_drops += 1;
            return;
        }
        self.watermark = self.watermark.max(pkt.ts);
        let key = (self.query.group_by)(pkt);
        let bucket_start = bucket * self.query.bucket_micros;
        if let Some(lfta) = &mut self.lfta {
            if let Some(partial) = lfta.update(
                key,
                bucket,
                pkt,
                self.query.aggregate.as_ref(),
                bucket_start,
            ) {
                self.stats.lfta_evictions += 1;
                Self::absorb_partial(
                    &mut self.buckets,
                    &self.query,
                    partial.bucket,
                    partial.key,
                    partial.agg,
                );
            }
        } else {
            let agg = self
                .buckets
                .entry(bucket)
                .or_default()
                .entry(key)
                .or_insert_with(|| self.query.aggregate.make(bucket_start));
            agg.update(pkt);
        }
        self.maybe_close_buckets();
    }

    /// Offers one tuple carrying a Horvitz–Thompson scale (the `1/p`
    /// inverse-inclusion-probability weight attached by decay-aware load
    /// shedding). A unit scale is exactly [`process`](Engine::process);
    /// non-unit scales take the direct high-level path, bypassing the
    /// LFTA — its direct-mapped slots carry no scale column. High-level
    /// groups absorb LFTA partials through the same merge
    /// ([`absorb_partial`](Self::absorb_partial)), so mixing scaled and
    /// unscaled tuples within a bucket stays correct.
    pub fn process_scaled(&mut self, pkt: &Packet, scale: f64) {
        if scale == 1.0 {
            return self.process(pkt);
        }
        self.stats.tuples_in += 1;
        if let Some(f) = &self.query.filter {
            if !f(pkt) {
                self.stats.filtered += 1;
                return;
            }
        }
        let bucket = pkt.ts / self.query.bucket_micros;
        if bucket < self.closed_below {
            self.stats.late_drops += 1;
            return;
        }
        self.watermark = self.watermark.max(pkt.ts);
        let key = (self.query.group_by)(pkt);
        let bucket_start = bucket * self.query.bucket_micros;
        let agg = self
            .buckets
            .entry(bucket)
            .or_default()
            .entry(key)
            .or_insert_with(|| self.query.aggregate.make(bucket_start));
        agg.update_scaled(pkt, scale);
        self.maybe_close_buckets();
    }

    fn absorb_partial(
        buckets: &mut BTreeMap<u64, HashMap<u64, Box<dyn Aggregator>>>,
        query: &Query,
        bucket: u64,
        key: u64,
        agg: Box<dyn Aggregator>,
    ) {
        let bucket_start = bucket * query.bucket_micros;
        match buckets.entry(bucket).or_default().entry(key) {
            std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().merge_boxed(agg),
            std::collections::hash_map::Entry::Vacant(e) => {
                // First partial for the group: it IS the high-level state,
                // but create-and-merge keeps the code path uniform.
                let mut fresh = query.aggregate.make(bucket_start);
                fresh.merge_boxed(agg);
                e.insert(fresh);
            }
        }
    }

    /// Closes every bucket whose end + slack has been passed by the
    /// watermark. Empty buckets cost nothing: the LFTA is flushed once for
    /// the whole closeable range, then only data-bearing buckets emit.
    fn maybe_close_buckets(&mut self) {
        let horizon = self.watermark.saturating_sub(self.query.slack_micros);
        let target = horizon / self.query.bucket_micros;
        if target <= self.closed_below {
            return;
        }
        if let Some(lfta) = &mut self.lfta {
            for p in lfta.flush_below(target) {
                Self::absorb_partial(&mut self.buckets, &self.query, p.bucket, p.key, p.agg);
            }
        }
        while let Some((&b, _)) = self.buckets.iter().next() {
            if b >= target {
                break;
            }
            self.close_bucket(b);
        }
        self.closed_below = target;
    }

    fn close_bucket(&mut self, bucket: u64) {
        let Some(groups) = self.buckets.remove(&bucket) else {
            return;
        };
        self.stats.buckets_closed += 1;
        if let Some(state) = &mut self.closed_state {
            let mut closed: Vec<ClosedGroup> = groups
                .into_iter()
                .map(|(key, agg)| ClosedGroup { bucket, key, agg })
                .collect();
            closed.sort_by_key(|c| c.key);
            state.extend(closed);
            return;
        }
        let bucket_start = bucket * self.query.bucket_micros;
        let t_end = secs((bucket + 1) * self.query.bucket_micros);
        let mut rows: Vec<Row> = groups
            .into_iter()
            .map(|(key, agg)| Row {
                bucket_start,
                key,
                value: agg.emit(t_end),
            })
            .collect();
        rows.sort_by_key(|r| r.key);
        self.stats.rows_out += rows.len() as u64;
        self.out.extend(rows);
    }

    /// Processes a punctuation: advances the watermark to `ts` and closes
    /// every bucket whose end + slack it passes, without any data tuple.
    pub fn punctuate(&mut self, ts: Micros) {
        self.watermark = self.watermark.max(ts);
        self.maybe_close_buckets();
    }

    /// Offers one stream element (data or control).
    pub fn process_event(&mut self, ev: &StreamEvent) {
        match ev {
            StreamEvent::Data(pkt) => self.process(pkt),
            StreamEvent::Punctuation(ts) => self.punctuate(*ts),
        }
    }

    /// Collects the rows of all buckets closed so far.
    pub fn drain_rows(&mut self) -> Vec<Row> {
        std::mem::take(&mut self.out)
    }

    /// Collects the raw state of all buckets closed so far (state mode
    /// only; empty in row mode).
    pub fn drain_closed_state(&mut self) -> Vec<ClosedGroup> {
        self.closed_state
            .as_mut()
            .map(std::mem::take)
            .unwrap_or_default()
    }

    fn close_all(&mut self) {
        if let Some(lfta) = &mut self.lfta {
            for p in lfta.flush_all() {
                Self::absorb_partial(&mut self.buckets, &self.query, p.bucket, p.key, p.agg);
            }
        }
        while let Some((&b, _)) = self.buckets.iter().next() {
            self.close_bucket(b);
            self.closed_below = self.closed_below.max(b + 1);
        }
    }

    /// Ends the stream: closes all open buckets and returns every pending
    /// row.
    pub fn finish(&mut self) -> Vec<Row> {
        self.close_all();
        self.drain_rows()
    }

    /// Ends the stream in state mode: closes all open buckets and returns
    /// every pending [`ClosedGroup`].
    pub fn finish_state(&mut self) -> Vec<ClosedGroup> {
        self.close_all();
        self.drain_closed_state()
    }

    /// Runs a whole stream through the query and returns all rows.
    pub fn run(&mut self, stream: impl IntoIterator<Item = Packet>) -> Vec<Row> {
        for pkt in stream {
            self.process(&pkt);
        }
        self.finish()
    }

    /// Execution counters so far.
    pub fn stats(&self) -> EngineStats {
        let mut s = self.stats;
        if let Some(lfta) = &self.lfta {
            s.lfta_evictions = lfta.evictions();
        }
        s
    }

    /// Occupied LFTA slots right now; `None` in single-level mode. O(slots)
    /// — the shard workers sample it once per punctuation for telemetry.
    pub fn lfta_occupancy(&self) -> Option<usize> {
        self.lfta.as_ref().map(Lfta::occupancy)
    }

    /// The current watermark (largest timestamp or punctuation seen), µs.
    pub fn watermark(&self) -> Micros {
        self.watermark
    }

    /// Current memory footprint of all live aggregation state.
    pub fn space_bytes(&self) -> usize {
        let high: usize = self
            .buckets
            .values()
            .flat_map(|g| g.values())
            .map(|a| a.size_bytes())
            .sum();
        high + self.lfta.as_ref().map_or(0, Lfta::size_bytes)
    }

    /// Average space per live group in bytes — the paper's Figure 2(d) /
    /// 4(c) metric. `None` when no groups are live.
    pub fn space_per_group(&self) -> Option<f64> {
        let groups: Vec<usize> = self
            .buckets
            .values()
            .flat_map(|g| g.values())
            .map(|a| a.size_bytes())
            .collect();
        if groups.is_empty() {
            return None;
        }
        Some(groups.iter().sum::<usize>() as f64 / groups.len() as f64)
    }

    /// Serializes the engine's complete execution state — watermark, close
    /// frontier, counters, every open high-level group, the LFTA slots *in
    /// place*, any pending closed state or rows — into one byte buffer.
    ///
    /// The snapshot is deterministic (group keys are sorted) and restoring
    /// it with [`Engine::restore`] resumes the run so that the remaining
    /// stream produces **byte-identical** output: LFTA slots go back to the
    /// exact positions they held, so future fold/evict/flush order — and
    /// with it every floating-point combination order — is unchanged.
    ///
    /// # Errors
    /// Fails with a `CodecError` if the query's aggregator does not support
    /// checkpointing (the samplers decline — their reservoirs carry no serde
    /// support) or if encoding fails.
    pub fn checkpoint(&self) -> Result<Vec<u8>, fd_core::checkpoint::CodecError> {
        let mut blob = Vec::with_capacity(self.last_ckpt_bytes.get() + 16 * 1024);
        self.checkpoint_into(&mut blob)?;
        Ok(blob)
    }

    /// [`checkpoint`](Engine::checkpoint) into a caller-supplied buffer,
    /// clearing it first. Periodic checkpointing recycles the previous
    /// snapshot's buffer through here (see `CheckpointSlot::store`), so
    /// the steady state rewrites the same half-megabyte instead of paying
    /// an allocate/fault/free cycle per checkpoint.
    pub fn checkpoint_into(
        &self,
        out: &mut Vec<u8>,
    ) -> Result<(), fd_core::checkpoint::CodecError> {
        use fd_core::checkpoint::{put_u64, to_bytes_into, CodecError};
        let unsupported = || {
            CodecError::new(format!(
                "aggregate '{}' does not support checkpointing",
                self.query.aggregate.name()
            ))
        };
        // Layout: `flat blob | serde header | header_len`. The bulky,
        // regular state — one tiny aggregator checkpoint per live group,
        // tens of thousands per snapshot — is hand-packed into the blob:
        // the serde codec's element-at-a-time walk (and one `Vec` per
        // group) made checkpoints cost milliseconds, which put supervised
        // workers on the pipeline's critical path. The header trails the
        // blob so the result is one buffer, never recopied.
        let mut blob = std::mem::take(out);
        blob.clear();
        put_u64(&mut blob, self.buckets.len() as u64);
        for (&bucket, groups) in &self.buckets {
            put_u64(&mut blob, bucket);
            put_u64(&mut blob, groups.len() as u64);
            let mut entries: Vec<(&u64, &Box<dyn Aggregator>)> = groups.iter().collect();
            entries.sort_unstable_by_key(|&(&key, _)| key);
            for (&key, agg) in entries {
                put_u64(&mut blob, key);
                crate::udaf::write_agg(&mut blob, agg.as_ref()).ok_or_else(unsupported)?;
            }
        }
        if let Some(l) = &self.lfta {
            l.snapshot_into(&mut blob).ok_or_else(unsupported)?;
        }
        let closed_src: &[ClosedGroup] = self.closed_state.as_deref().unwrap_or(&[]);
        put_u64(&mut blob, closed_src.len() as u64);
        for g in closed_src {
            put_u64(&mut blob, g.bucket);
            put_u64(&mut blob, g.key);
            crate::udaf::write_agg(&mut blob, g.agg.as_ref()).ok_or_else(unsupported)?;
        }
        self.last_ckpt_bytes.set(blob.len());
        let header_start = blob.len();
        to_bytes_into(
            &EngineHeader {
                watermark: self.watermark,
                closed_below: self.closed_below,
                stats: self.stats,
                state_mode: self.closed_state.is_some(),
                lfta: self
                    .lfta
                    .as_ref()
                    .map(|l| (l.n_slots() as u64, l.evictions(), l.updates())),
                rows: self.out.clone(),
            },
            &mut blob,
        )?;
        let header_len = (blob.len() - header_start) as u64;
        put_u64(&mut blob, header_len);
        *out = blob;
        Ok(())
    }

    /// Rebuilds an engine from a [`checkpoint`](Engine::checkpoint) taken on
    /// an engine running the *same* `query` (same aggregate, bucketing and
    /// split configuration — the caller is responsible for passing the
    /// original query; mismatches surface as decode or shape errors).
    ///
    /// # Errors
    /// Fails if the bytes don't decode, or if the snapshot's two-level
    /// shape contradicts the query's.
    pub fn restore(query: Query, bytes: &[u8]) -> Result<Self, fd_core::checkpoint::CodecError> {
        use fd_core::checkpoint::{CodecError, Reader};
        if bytes.len() < 8 {
            return Err(CodecError::new("checkpoint shorter than its length tail"));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let header_len = u64::from_le_bytes(tail.try_into().expect("8 bytes")) as usize;
        if header_len > body.len() {
            return Err(CodecError::new("checkpoint header overruns the buffer"));
        }
        let (blob, header_bytes) = body.split_at(body.len() - header_len);
        let header: EngineHeader = fd_core::checkpoint::from_bytes(header_bytes)?;
        let mut r = Reader::new(blob);
        let mut e = Engine::new(query);
        let factory = std::sync::Arc::clone(&e.query.aggregate);
        let bucket_micros = e.query.bucket_micros;
        let n_buckets = r.u64()?;
        for _ in 0..n_buckets {
            let bucket = r.u64()?;
            let n_groups = r.u64()?;
            let bucket_start = bucket * bucket_micros;
            let map = e.buckets.entry(bucket).or_default();
            for _ in 0..n_groups {
                let key = r.u64()?;
                let len = r.u64()? as usize;
                let mut agg = factory.make(bucket_start);
                agg.restore(r.bytes(len)?)?;
                map.insert(key, agg);
            }
        }
        match (header.lfta, e.lfta.is_some()) {
            (Some((n_slots, evictions, updates)), true) => {
                e.lfta = Some(Lfta::restore_from(
                    &mut r,
                    n_slots,
                    evictions,
                    updates,
                    factory.as_ref(),
                    bucket_micros,
                )?);
            }
            (None, false) => {}
            (Some(_), false) => {
                return Err(CodecError::new(
                    "snapshot has an LFTA but the query is single-level",
                ));
            }
            (None, true) => {
                return Err(CodecError::new(
                    "query is two-level but the snapshot has no LFTA",
                ));
            }
        }
        let n_closed = r.u64()?;
        if header.state_mode {
            let mut state = Vec::with_capacity(n_closed as usize);
            for _ in 0..n_closed {
                let bucket = r.u64()?;
                let key = r.u64()?;
                let len = r.u64()? as usize;
                let mut agg = factory.make(bucket * bucket_micros);
                agg.restore(r.bytes(len)?)?;
                state.push(ClosedGroup { bucket, key, agg });
            }
            e.closed_state = Some(state);
        } else if n_closed != 0 {
            return Err(CodecError::new("closed state in a row-mode snapshot"));
        }
        if !r.is_empty() {
            return Err(CodecError::new("trailing bytes after checkpoint blob"));
        }
        e.watermark = header.watermark;
        e.closed_below = header.closed_below;
        e.stats = header.stats;
        e.out = header.rows;
        Ok(e)
    }
}

/// The serde-encoded head of an [`Engine`] checkpoint: everything small
/// and irregular. The per-group bulk (HFTA buckets, LFTA slots, closed
/// state) is hand-packed into a flat blob after it — see
/// [`Engine::checkpoint`] for the layout and the why.
#[derive(serde::Serialize, serde::Deserialize)]
struct EngineHeader {
    watermark: Micros,
    closed_below: u64,
    stats: EngineStats,
    state_mode: bool,
    /// `(n_slots, evictions, updates)` when the query is two-level.
    lfta: Option<(u64, u64, u64)>,
    /// Pending rows (row mode).
    rows: Vec<Row>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregators::{count_factory, fwd_count_factory};
    use crate::tuple::{Proto, MICROS_PER_SEC};
    use fd_core::decay::Monomial;

    fn pkt(ts_s: f64, dst_ip: u32) -> Packet {
        Packet {
            ts: (ts_s * MICROS_PER_SEC as f64) as Micros,
            src_ip: 1,
            dst_ip,
            src_port: 1000,
            dst_port: 80,
            len: 100,
            proto: Proto::Tcp,
        }
    }

    fn count_query(two_level: bool) -> Query {
        Query::builder("count")
            .group_by(|p| p.dst_host())
            .bucket_secs(60)
            .aggregate(count_factory())
            .two_level(two_level)
            .lfta_slots(16)
            .build()
    }

    #[test]
    fn counts_per_group_and_bucket() {
        for two_level in [false, true] {
            let mut e = Engine::new(count_query(two_level));
            let mut stream = Vec::new();
            // Bucket 0: host 1 ×10, host 2 ×5. Bucket 1: host 1 ×3.
            for i in 0..10 {
                stream.push(pkt(1.0 + i as f64, 1));
            }
            for i in 0..5 {
                stream.push(pkt(20.0 + i as f64, 2));
            }
            for i in 0..3 {
                stream.push(pkt(61.0 + i as f64, 1));
            }
            let rows = e.run(stream);
            assert_eq!(rows.len(), 3, "two_level = {two_level}");
            let find = |bs: Micros, key: u64| {
                rows.iter()
                    .find(|r| r.bucket_start == bs && r.key == key)
                    .map(|r| r.value.as_float().expect("float"))
            };
            assert_eq!(find(0, 1), Some(10.0));
            assert_eq!(find(0, 2), Some(5.0));
            assert_eq!(find(60 * MICROS_PER_SEC, 1), Some(3.0));
        }
    }

    #[test]
    fn two_level_and_single_level_agree_under_collisions() {
        // Many more groups than LFTA slots: heavy eviction traffic must not
        // change the results.
        let stream: Vec<Packet> = (0..20_000)
            .map(|i| pkt(0.001 * i as f64, (i % 500) as u32))
            .collect();
        let mut split = Engine::new(count_query(true));
        let mut flat = Engine::new(count_query(false));
        let rows_split = split.run(stream.clone());
        let rows_flat = flat.run(stream);
        assert!(split.stats().lfta_evictions > 0);
        assert_eq!(rows_split.len(), rows_flat.len());
        for (a, b) in rows_split.iter().zip(&rows_flat) {
            assert_eq!((a.bucket_start, a.key), (b.bucket_start, b.key));
            assert_eq!(a.value, b.value);
        }
    }

    #[test]
    fn forward_decayed_count_uses_bucket_start_as_landmark() {
        // One packet at t = 90 in the bucket [60, 120): landmark 60,
        // queried at 120 → weight = ((90−60)/(120−60))² = 0.25.
        let q = Query::builder("fwd")
            .group_by(|p| p.dst_host())
            .bucket_secs(60)
            .aggregate(fwd_count_factory(Monomial::quadratic()))
            .build();
        let mut e = Engine::new(q);
        let rows = e.run(vec![pkt(90.0, 1)]);
        assert_eq!(rows.len(), 1);
        let v = rows[0].value.as_float().expect("float");
        assert!((v - 0.25).abs() < 1e-9, "got {v}");
    }

    #[test]
    fn filter_drops_tuples() {
        let q = Query::builder("tcp_only")
            .filter(|p| p.proto == Proto::Udp)
            .aggregate(count_factory())
            .build();
        let mut e = Engine::new(q);
        let rows = e.run(vec![pkt(1.0, 1), pkt(2.0, 1)]);
        assert!(rows.is_empty());
        assert_eq!(e.stats().filtered, 2);
    }

    #[test]
    fn buckets_close_on_watermark_and_late_tuples_drop() {
        let mut e = Engine::new(count_query(false));
        e.process(&pkt(10.0, 1));
        e.process(&pkt(130.0, 1)); // watermark 130 closes bucket 0 (and 1)
        let rows = e.drain_rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].bucket_start, 0);
        e.process(&pkt(15.0, 1)); // late into closed bucket 0
        assert_eq!(e.stats().late_drops, 1);
        let final_rows = e.finish();
        assert_eq!(final_rows.len(), 1); // the t=130 bucket
    }

    #[test]
    fn slack_tolerates_out_of_order() {
        let q = Query::builder("slack")
            .group_by(|p| p.dst_host())
            .bucket_secs(60)
            .slack_secs(10.0)
            .aggregate(count_factory())
            .two_level(false)
            .build();
        let mut e = Engine::new(q);
        e.process(&pkt(59.0, 1));
        e.process(&pkt(65.0, 1)); // watermark 65 < 60 + 10: bucket 0 stays open
        e.process(&pkt(58.0, 1)); // out of order, still accepted
        assert_eq!(e.stats().late_drops, 0);
        let rows = e.finish();
        let b0 = rows.iter().find(|r| r.bucket_start == 0).expect("bucket 0");
        assert_eq!(b0.value.as_float(), Some(2.0));
    }

    #[test]
    fn stats_and_space_reporting() {
        let mut e = Engine::new(count_query(true));
        for i in 0..100 {
            e.process(&pkt(i as f64 * 0.1, (i % 7) as u32));
        }
        assert_eq!(e.stats().tuples_in, 100);
        assert!(e.space_bytes() > 0);
        e.finish();
        assert_eq!(e.stats().rows_out, 7);
    }

    #[test]
    fn multi_aggregate_splits_through_the_two_level_pipeline() {
        use crate::aggregators::{multi_factory, sum_factory};
        let combo = multi_factory(vec![count_factory(), sum_factory(|p| p.len as f64)]);
        let q = Query::builder("multi")
            .group_by(|p| p.dst_host())
            .bucket_secs(60)
            .aggregate(combo)
            .two_level(true)
            .lfta_slots(4) // force eviction/merge traffic through MultiAgg
            .build();
        let mut e = Engine::new(q);
        assert!(e.is_split());
        let stream: Vec<Packet> = (0..1000)
            .map(|i| pkt(i as f64 * 0.01, (i % 20) as u32))
            .collect();
        let rows = e.run(stream);
        assert!(e.stats().lfta_evictions > 0);
        assert_eq!(rows.len(), 20);
        for r in &rows {
            let parts = r.value.as_multi().expect("multi");
            assert_eq!(parts[0].as_float(), Some(50.0)); // 1000 / 20 groups
            assert_eq!(parts[1].as_float(), Some(50.0 * 100.0));
        }
    }

    #[test]
    fn punctuation_closes_buckets_without_data() {
        let mut e = Engine::new(count_query(false));
        e.process(&pkt(10.0, 1));
        assert!(e.drain_rows().is_empty(), "bucket must stay open");
        // A heartbeat promises that t < 120 s is complete: bucket 0 closes
        // even though no data tuple has passed its boundary.
        e.punctuate(120 * MICROS_PER_SEC);
        let rows = e.drain_rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].value.as_float(), Some(1.0));
        // Data arriving before the punctuation's promise is late.
        e.process(&pkt(30.0, 1));
        assert_eq!(e.stats().late_drops, 1);
    }

    #[test]
    fn process_event_dispatches() {
        let mut e = Engine::new(count_query(true));
        e.process_event(&StreamEvent::Data(pkt(5.0, 1)));
        e.process_event(&StreamEvent::Punctuation(70 * MICROS_PER_SEC));
        let rows = e.drain_rows();
        assert_eq!(rows.len(), 1);
        // Punctuations never regress the watermark.
        e.process_event(&StreamEvent::Punctuation(0));
        e.process_event(&StreamEvent::Data(pkt(100.0, 2)));
        assert_eq!(e.finish().len(), 1);
    }

    #[test]
    fn scaled_tuples_reweight_linear_aggregates() {
        use crate::aggregators::{fwd_avg_factory, fwd_sum_factory, multi_factory};
        // One survivor fed with scale w must equal the same tuple fed w
        // times — the Horvitz–Thompson identity, end to end through the
        // engine (including the LFTA-bypass for scaled tuples).
        let combo = || {
            multi_factory(vec![
                crate::aggregators::fwd_count_factory(Monomial::quadratic()),
                fwd_sum_factory(Monomial::quadratic(), |p| p.len as f64),
                fwd_avg_factory(Monomial::quadratic(), |p| p.len as f64),
            ])
        };
        let q = |f| {
            Query::builder("scaled")
                .group_by(|p: &Packet| p.dst_host())
                .bucket_secs(60)
                .aggregate(f)
                .two_level(true)
                .lfta_slots(16)
                .build()
        };
        let mut scaled = Engine::new(q(combo()));
        let mut dup = Engine::new(q(combo()));
        {
            use crate::udaf::AggregatorFactory as _;
            assert!(combo().make(0).supports_scaled_updates());
        }
        for i in 0..200 {
            let p = pkt(i as f64 * 0.25, (i % 5) as u32);
            if i % 3 == 0 {
                scaled.process_scaled(&p, 3.0);
                for _ in 0..3 {
                    dup.process(&p);
                }
            } else {
                scaled.process(&p);
                dup.process(&p);
            }
        }
        let (a, b) = (scaled.finish(), dup.finish());
        assert_eq!(a.len(), b.len());
        for (ra, rb) in a.iter().zip(&b) {
            assert_eq!((ra.bucket_start, ra.key), (rb.bucket_start, rb.key));
            let (pa, pb) = (ra.value.as_multi().unwrap(), rb.value.as_multi().unwrap());
            for (va, vb) in pa.iter().zip(pb) {
                let (x, y) = (va.as_float().unwrap(), vb.as_float().unwrap());
                assert!((x - y).abs() <= 1e-9 * y.abs().max(1.0), "{x} vs {y}");
            }
        }
    }

    #[test]
    fn unit_scale_is_exactly_process() {
        let mut a = Engine::new(count_query(true));
        let mut b = Engine::new(count_query(true));
        for i in 0..500 {
            let p = pkt(i as f64 * 0.3, (i % 9) as u32);
            a.process(&p);
            b.process_scaled(&p, 1.0);
        }
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn empty_stream_produces_no_rows() {
        let mut e = Engine::new(count_query(true));
        assert!(e.finish().is_empty());
        assert_eq!(e.stats().buckets_closed, 0);
        assert!(e.space_per_group().is_none());
    }
}
