//! The stream tuple: a network packet record, mirroring the `TCP`/`UDP`
//! stream schemas of the paper's GSQL queries.

use fd_core::Timestamp;
use serde::{Deserialize, Serialize};

/// Engine timestamps: microseconds since an arbitrary epoch — the same
/// clock as [`fd_core::Timestamp`], kept unsigned in the tuple format.
pub type Micros = u64;

/// Microseconds per second.
pub const MICROS_PER_SEC: u64 = 1_000_000;

/// Converts an engine timestamp to the workspace [`Timestamp`] clock.
#[inline]
pub fn timestamp(t: Micros) -> Timestamp {
    Timestamp::from_micros(t as i64)
}

/// Converts an engine timestamp to seconds (the unit fd-core decay
/// functions operate in).
#[inline]
pub fn secs(t: Micros) -> f64 {
    timestamp(t).as_secs_f64()
}

/// Transport protocol of a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Proto {
    /// TCP traffic (the main streams of Figures 2–5).
    Tcp,
    /// UDP traffic (Figures 4(b) and 4(d)).
    Udp,
}

/// One observed packet — the tuple type flowing through every query.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Packet {
    /// Observation timestamp (microseconds).
    pub ts: Micros,
    /// Source IPv4 address.
    pub src_ip: u32,
    /// Destination IPv4 address.
    pub dst_ip: u32,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Packet length in bytes.
    pub len: u32,
    /// Transport protocol.
    pub proto: Proto,
}

impl Packet {
    /// The destination (IP, port) pair packed into one group key — the
    /// grouping used by the paper's count/sum queries
    /// (`group by destIP, destPort`).
    #[inline]
    pub fn dst_key(&self) -> u64 {
        ((self.dst_ip as u64) << 16) | self.dst_port as u64
    }

    /// The destination host alone — the grouping of the heavy-hitter
    /// queries ("network hosts receiving the most TCP traffic").
    #[inline]
    pub fn dst_host(&self) -> u64 {
        self.dst_ip as u64
    }

    /// The source host (sampled in the paper's `PRISAMP(srcIP, …)` query).
    #[inline]
    pub fn src_host(&self) -> u64 {
        self.src_ip as u64
    }

    /// Observation instant on the workspace clock — exact microseconds,
    /// what fd-core summaries are fed.
    #[inline]
    pub fn timestamp(&self) -> Timestamp {
        timestamp(self.ts)
    }

    /// Timestamp in seconds.
    #[inline]
    pub fn ts_secs(&self) -> f64 {
        secs(self.ts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt() -> Packet {
        Packet {
            ts: 2_500_000,
            src_ip: 0x0A00_0001,
            dst_ip: 0xC0A8_0102,
            src_port: 54321,
            dst_port: 443,
            len: 1500,
            proto: Proto::Tcp,
        }
    }

    #[test]
    fn secs_conversion() {
        assert_eq!(secs(0), 0.0);
        assert_eq!(secs(1_500_000), 1.5);
        assert_eq!(pkt().ts_secs(), 2.5);
    }

    #[test]
    fn dst_key_is_injective_on_ip_port() {
        let a = pkt();
        let mut b = a;
        b.dst_port = 80;
        let mut c = a;
        c.dst_ip ^= 1;
        assert_ne!(a.dst_key(), b.dst_key());
        assert_ne!(a.dst_key(), c.dst_key());
        assert_eq!(a.dst_host(), b.dst_host());
    }

    #[test]
    fn packet_is_serializable() {
        // Compile-time check that the serde derives are usable behind
        // generic bounds (no serializer crate in the dependency tree).
        fn assert_serde<T: serde::Serialize + for<'a> serde::Deserialize<'a>>() {}
        assert_serde::<Packet>();
        assert_serde::<Proto>();
    }
}
